"""Data-plane placement: worker selection, capacity and startup admission.

The paper's system model (Section III-A) runs on a cluster of workers.
Historically the simulator's :class:`~repro.cluster.worker.WorkerSet` was
pure accounting -- worker count never affected latency.  The
:class:`PlacementEngine` makes workers a real resource:

* **Selection** -- cold starts are placed on a worker.  Without a
  concurrency limit this reproduces the historical least-memory rule
  byte-for-byte; with a limit, the engine load-balances on in-flight
  startups/executions instead, and an optional per-worker memory capacity
  filters out workers that would overcommit.
* **Admission** -- each worker runs at most ``concurrency_limit``
  containers concurrently (startup phases plus execution).  Startups
  beyond the limit queue FIFO on their worker; :meth:`admit` returns the
  actual start time and the queueing delay, which the simulator adds to
  the reported startup latency and records separately.

Admission is computed *at decision time*: every admitted startup's
release time (startup + execution) is known when it is admitted, so the
engine keeps a small heap of per-slot release times per worker and derives
each newcomer's start time deterministically -- no extra event types, and
with the limit disabled the engine is a strict no-op on the hot path.

Like the container lifecycle, the engine is time-source-agnostic: ``now``
is always an argument, never read from a clock, so the same admission
arithmetic serves offline simulation and the online serving plane.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.cluster.worker import WorkerSet


class PlacementEngine:
    """Worker selection plus per-worker concurrency admission.

    Parameters
    ----------
    workers:
        The placement bookkeeping shared with the rest of the cluster.
    concurrency_limit:
        Maximum containers concurrently starting or executing per worker;
        ``None`` disables admission control entirely (no queueing, and
        selection falls back to the historical least-memory rule).
    worker_capacity_mb:
        Optional per-worker memory bound used as a placement filter: cold
        starts prefer workers whose hosted memory stays within the bound.
        When every worker would exceed it, the least-loaded worker is used
        anyway (the warm pool remains the hard memory limit).
    """

    def __init__(
        self,
        workers: WorkerSet,
        concurrency_limit: Optional[int] = None,
        worker_capacity_mb: Optional[float] = None,
    ) -> None:
        if concurrency_limit is not None and concurrency_limit < 1:
            raise ValueError("concurrency_limit must be >= 1")
        if worker_capacity_mb is not None and worker_capacity_mb <= 0:
            raise ValueError("worker_capacity_mb must be positive")
        self.workers = workers
        self.concurrency_limit = concurrency_limit
        self.worker_capacity_mb = worker_capacity_mb
        n = workers.n_workers
        # Per-worker release times of the jobs currently holding a slot
        # chain (at most ``concurrency_limit`` entries per worker).
        self._slots: List[List[float]] = [[] for _ in range(n)]
        # Per-worker release times of every admitted, unreleased startup.
        self._inflight: List[List[float]] = [[] for _ in range(n)]
        # Per-worker start times of admitted-but-not-yet-started startups.
        self._waiting: List[List[float]] = [[] for _ in range(n)]

    @property
    def queueing_enabled(self) -> bool:
        """Whether a finite concurrency limit is being enforced."""
        return self.concurrency_limit is not None

    # -- selection ----------------------------------------------------------
    def select_worker(self, memory_mb: float, now: float) -> int:
        """Pick the worker for a new (cold-started) container.

        With admission control off this is the historical least-memory
        rule.  With it on, workers are ranked by in-flight load first so
        ``n_workers`` genuinely spreads startup contention; the optional
        memory capacity filters candidates before ranking.
        """
        candidates = self.workers.workers()
        if self.worker_capacity_mb is not None:
            fitting = [
                w for w in candidates
                if w.memory_mb + memory_mb <= self.worker_capacity_mb
            ]
            if fitting:
                candidates = fitting
        if self.concurrency_limit is None:
            chosen = min(candidates, key=lambda w: (w.memory_mb, w.worker_id))
        else:
            chosen = min(
                candidates,
                key=lambda w: (
                    self._inflight_count(w.worker_id, now),
                    w.memory_mb,
                    w.worker_id,
                ),
            )
        return chosen.worker_id

    def place(self, container_id: int, memory_mb: float, now: float) -> int:
        """Select a worker and record the placement; returns the worker id."""
        worker_id = self.select_worker(memory_mb, now)
        return self.workers.place_on(worker_id, container_id, memory_mb)

    def release(self, container_id: int, memory_mb: float) -> None:
        """Remove a destroyed container from its worker's books."""
        self.workers.release(container_id, memory_mb)

    # -- admission ----------------------------------------------------------
    def admit(self, worker_id: int, now: float, hold_s: float) -> Tuple[float, float]:
        """Admit a startup holding a worker slot for ``hold_s`` seconds.

        Returns ``(start_time, queue_delay)``.  With the limit disabled the
        startup begins immediately.  Otherwise the startup begins as soon
        as a slot frees on its worker (FIFO); because every admitted job's
        release time is known, the start time is exact, not an estimate.
        """
        if self.concurrency_limit is None:
            return now, 0.0
        slots = self._slots[worker_id]
        while slots and slots[0] <= now:
            heapq.heappop(slots)
        start = now
        while len(slots) >= self.concurrency_limit:
            release_at = heapq.heappop(slots)
            if release_at > start:
                start = release_at
        release = start + hold_s
        heapq.heappush(slots, release)
        inflight = self._inflight[worker_id]
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)
        heapq.heappush(inflight, release)
        if start > now:
            waiting = self._waiting[worker_id]
            while waiting and waiting[0] <= now:
                heapq.heappop(waiting)
            heapq.heappush(waiting, start)
        return start, start - now

    # -- load views ---------------------------------------------------------
    def _inflight_count(self, worker_id: int, now: float) -> int:
        inflight = self._inflight[worker_id]
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)
        return len(inflight)

    def slot_counts(self) -> Tuple[int, ...]:
        """Occupied (possibly stale) slot-chain entries per worker.

        :meth:`admit` pops the slot heap below the limit before every push,
        so each count is bounded by ``concurrency_limit`` at all times --
        the invariant the verification harness checks.  Entries whose
        release time has passed are pruned lazily at the next admission,
        so counts may include already-released jobs.
        """
        return tuple(len(slots) for slots in self._slots)

    def inflight_counts(self, now: float) -> Tuple[int, ...]:
        """Admitted-but-unreleased startups/executions per worker."""
        return tuple(
            self._inflight_count(i, now)
            for i in range(self.workers.n_workers)
        )

    def queue_depths(self, now: float) -> Tuple[int, ...]:
        """Startups waiting for a concurrency slot, per worker.

        All zeros when admission control is disabled.
        """
        if self.concurrency_limit is None:
            return (0,) * self.workers.n_workers
        depths = []
        for waiting in self._waiting:
            while waiting and waiting[0] <= now:
                heapq.heappop(waiting)
            depths.append(len(waiting))
        return tuple(depths)
