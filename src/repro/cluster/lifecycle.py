"""Data-plane container lifecycle: create, claim, repack, keep-alive, destroy.

Extracted from the old ``ClusterSimulator`` monolith, this component owns
every container-state mutation in the cluster:

* **creation** -- id allocation, live-set registration, live-memory
  accounting, worker placement and the cleaner's initial volume mount;
* **claiming** -- validating a warm decision (id exists, Table-I match)
  and pulling the container out of the warm pool;
* **repacking** -- delegating to the :class:`ContainerCleaner` and keeping
  live-memory accounting in sync with the image swap;
* **keep-alive / eviction / TTL expiry** -- returning finished containers
  to their worker's pool shard through the eviction policy;
* **fault hooks** -- crash sampling and startup-breakdown perturbation
  from the configured :class:`~repro.cluster.faults.FaultModel`.

The policy driver (:class:`~repro.cluster.simulator.ClusterSimulator`)
composes this with the :class:`~repro.cluster.eventloop.EventLoop` and the
:class:`~repro.cluster.placement.PlacementEngine`; nothing here touches the
clock or the event queue.  The lifecycle is *time-source-agnostic*: every
time-dependent operation takes ``now`` as a plain float argument, so the
same code serves the offline simulator (driven by a
:class:`~repro.cluster.eventloop.VirtualClock`) and the online serving
plane (driven by wall-clock timestamps) without change.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Set

from repro.cluster.eviction import EvictionPolicy
from repro.cluster.faults import FaultConfig, FaultModel
from repro.cluster.placement import PlacementEngine
from repro.cluster.pool import PoolSet
from repro.cluster.telemetry import Telemetry
from repro.containers.cleaner import CleanResult, ContainerCleaner
from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupBreakdown
from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel, match_level
from repro.containers.volumes import VolumeStore
from repro.workloads.workload import Invocation


class InvalidDecisionError(RuntimeError):
    """A scheduler returned an unusable decision (bad id, busy, no-match)."""


class ContainerLifecycle:
    """Owns container creation, reuse, pooling and destruction."""

    def __init__(
        self,
        pool: PoolSet,
        eviction: EvictionPolicy,
        telemetry: Telemetry,
        placement: PlacementEngine,
        faults: FaultConfig,
        per_worker_pools: bool = False,
        monitor=None,
    ) -> None:
        self.pool = pool
        self.eviction = eviction
        self.telemetry = telemetry
        self.placement = placement
        self.per_worker_pools = per_worker_pools
        self.volume_store = VolumeStore()
        self.cleaner = ContainerCleaner(self.volume_store)
        self.faults = FaultModel(faults)
        self._fault_config = faults
        self._container_ids = itertools.count(1)
        self._live: Dict[int, Container] = {}
        self.live_memory_mb = 0.0
        # Proactive-action bookkeeping: pre-warmed container ids awaiting
        # their first claim (claimed -> reuse, destroyed -> waste) and lent
        # container ids mapped to the function they were re-specialized for.
        self._prewarmed: Set[int] = set()
        self._lent: Dict[int, str] = {}
        # Lifetime counters backing the conservation invariant
        # (created == pooled + running + destroyed); two int increments per
        # container, cheap enough to maintain unconditionally.
        self.created_count = 0
        self.destroyed_count = 0
        # Optional repro.verify.VerificationHarness receiving destroy /
        # TTL-expiry notifications; None (the default) costs one is-None
        # test on those paths.
        self._monitor = monitor

    # -- creation -----------------------------------------------------------
    def create(
        self,
        image: FunctionImage,
        function_name: str,
        now: float,
        idle: bool = False,
    ) -> Container:
        """Create a container, place it on a worker and mount its volumes.

        ``idle=True`` builds a pre-warmed container (already IDLE, owner
        recorded) for :meth:`ClusterSimulator.prewarm`; the default is a
        cold-start container in its STARTING state.
        """
        container = Container(
            container_id=next(self._container_ids),
            image=image,
            created_at=now,
            last_used_at=now if idle else 0.0,
        )
        if idle:
            container.state = ContainerState.IDLE
        self._live[container.container_id] = container
        self.created_count += 1
        self.live_memory_mb += container.memory_mb
        self.placement.place(container.container_id, container.memory_mb, now)
        self.cleaner.initial_mount(container, function_name)
        if idle:
            container.current_function = function_name
        if self._monitor is not None:
            self._monitor.notify("create", container=container)
        return container

    def live_containers(self) -> Dict[int, Container]:
        """Snapshot view of every live (non-destroyed) container by id."""
        return dict(self._live)

    # -- claiming / repacking ------------------------------------------------
    def claim(
        self, container_id: Optional[int], invocation: Invocation, now: float
    ) -> Container:
        """Validate a warm decision and pull the container from the pool.

        Validation (id known, idle, Table-I reusable) happens *before* any
        mutation, so an :class:`InvalidDecisionError` leaves the cluster
        untouched -- callers rely on this to keep the pending invocation
        alive across a rejected decision.
        """
        if container_id is None:  # pragma: no cover - guarded by is_cold
            raise InvalidDecisionError("warm decision without a container id")
        container = self.pool.get(container_id)
        if container is None:
            raise InvalidDecisionError(
                f"container {container_id} is not an idle pooled container"
            )
        if match_level(invocation.spec.image, container.image) is MatchLevel.NO_MATCH:
            raise InvalidDecisionError(
                f"container {container_id} does not match invocation "
                f"{invocation.spec.name} at any level"
            )
        self.pool.remove(container_id)
        self.telemetry.sample_memory(now, self.pool.used_mb)
        container.claim()
        if container.container_id in self._prewarmed:
            self._prewarmed.discard(container.container_id)
            self.telemetry.record_prewarm_reuse()
        target = self._lent.pop(container.container_id, None)
        if target is not None and target == invocation.spec.name:
            self.telemetry.record_lend_reuse()
        return container

    def repack(
        self,
        container: Container,
        target_image: FunctionImage,
        function_name: str,
    ) -> CleanResult:
        """Repack a claimed container, keeping live memory in sync."""
        old_memory = container.memory_mb
        result = self.cleaner.repack(container, target_image, function_name)
        self.live_memory_mb += container.memory_mb - old_memory
        return result

    # -- proactive actions (pre-warm / lending) ------------------------------
    def prewarm(
        self, image: FunctionImage, function_name: str, now: float
    ) -> Container:
        """Create an idle container ahead of any arrival and pool it.

        The pre-warm path reuses the cold-start machinery (placement,
        volume mounts) but skips the startup latency accounting: nothing
        invoked yet.  The container enters the warm pool through the
        eviction policy like any finishing container, so a full pool can
        reject (and immediately waste) the pre-warm.  Claims and destroys
        of pre-warmed containers feed the reuse/waste counters.
        """
        container = self.create(image, function_name, now, idle=True)
        self.telemetry.record_prewarm_issue()
        self._prewarmed.add(container.container_id)
        if self.telemetry.trace_enabled:
            self.telemetry.record_event(
                now, "prewarm", container.container_id, function_name
            )
        self.telemetry.sample_live_memory(self.live_memory_mb)
        self.keep_alive(container, now)
        return container

    def lend(
        self,
        container_id: int,
        target_image: FunctionImage,
        function_name: str,
        now: float,
    ) -> bool:
        """Re-specialize an idle pooled container toward another function.

        Pagurus-style helping: the donor stays IDLE and stays pooled, but
        its image is repacked toward ``target_image`` through the cleaner
        (sharing every Table-I-compatible layer), so the target function's
        next arrival finds an exact match.  Returns False (cluster
        untouched) when the donor is gone, incompatible, or the repack
        would not fit its pool shard; the idle clock resets on success so
        LRU insertion order keeps implying idle-time order.
        """
        container = self.pool.get(container_id)
        if container is None:
            return False
        if match_level(target_image, container.image) is MatchLevel.NO_MATCH:
            return False
        shard_index = (
            self.placement.workers.worker_of(container_id)
            if self.per_worker_pools
            else 0
        )
        shard = self.pool.shard(shard_index)
        headroom = shard.capacity_mb - shard.used_mb + container.memory_mb
        if target_image.memory_mb > headroom:
            return False
        self.pool.remove(container_id)
        self.repack(container, target_image, function_name)
        container.current_function = function_name
        container.last_used_at = now
        self.pool.add(container, shard_index)
        self.telemetry.record_lend()
        self._lent[container_id] = function_name
        if self.telemetry.trace_enabled:
            self.telemetry.record_event(
                now, "lend", container_id, function_name
            )
        self.telemetry.sample_memory(now, self.pool.used_mb)
        self.telemetry.sample_live_memory(self.live_memory_mb)
        return True

    # -- keep-alive / destruction --------------------------------------------
    def keep_alive(self, container: Container, now: float) -> None:
        """Try to put a finished container back into its worker's pool."""
        shard_index = (
            self.placement.workers.worker_of(container.container_id)
            if self.per_worker_pools
            else 0
        )
        shard = self.pool.shard(shard_index)
        victims = self.eviction.select_victims(shard, container, now)
        if victims is None:
            self.destroy(container)
            self.telemetry.record_rejection()
            return
        for victim in victims:
            self.pool.remove(victim.container_id)
            self.destroy(victim)
            self.telemetry.record_eviction()
            if self.telemetry.trace_enabled:
                self.telemetry.record_event(
                    now, "eviction", victim.container_id,
                    victim.current_function,
                )
        self.pool.add(container, shard_index)
        self.telemetry.sample_memory(now, self.pool.used_mb)

    def expire_ttl(self, now: float) -> None:
        """Destroy pooled containers idle past the eviction policy's TTL."""
        ttl = self.eviction.ttl_s
        if ttl is None:
            return
        # LRU insertion order implies idle-time order under a fixed TTL, so
        # expiry pops only the actually-expired heads (O(expired + shards)
        # per event instead of an O(pool) scan).
        expired = self.pool.expire_older_than(now - ttl)
        if self._monitor is not None and expired:
            self._monitor.notify(
                "ttl_expired", now=now, ttl=ttl, containers=expired
            )
        for container in expired:
            self.destroy(container)
            self.telemetry.record_ttl_expiration()
        if expired:
            self.telemetry.sample_memory(now, self.pool.used_mb)

    def destroy(self, container: Container) -> None:
        """Tear a container down and release its worker placement."""
        if container.state is not ContainerState.EVICTED:
            container.evict()
        if self._live.pop(container.container_id, None) is not None:
            self.destroyed_count += 1
            self.live_memory_mb = max(
                0.0, self.live_memory_mb - container.memory_mb
            )
            if container.container_id in self._prewarmed:
                self._prewarmed.discard(container.container_id)
                self.telemetry.record_prewarm_waste()
            self._lent.pop(container.container_id, None)
            if self._monitor is not None:
                self._monitor.notify("destroy", container=container)
        self.placement.release(container.container_id, container.memory_mb)

    # -- fault hooks ---------------------------------------------------------
    @property
    def faults_enabled(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return self._fault_config.enabled

    def should_crash(self) -> bool:
        """Sample whether a finishing container dies instead of pooling."""
        return self.faults.should_crash()

    def perturb_breakdown(self, breakdown: StartupBreakdown) -> tuple:
        """Possibly perturb a startup breakdown; returns (breakdown, straggled)."""
        return self.faults.perturb_breakdown(breakdown)
