"""Fixed-capacity warm container pool.

The pool holds *idle* warm containers up to a memory capacity in MB (the
paper's fix-sized warm resource pool).  Busy containers are tracked by the
simulator, not the pool; only keep-alive decisions consume pool capacity.

The pool maintains LRU ordering (most recently used last) so eviction
policies and matching tie-breaks can iterate in recency order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.containers.container import Container


class PoolFullError(RuntimeError):
    """Raised when adding a container would exceed the pool capacity."""


class WarmPool:
    """A memory-bounded collection of idle warm containers.

    Parameters
    ----------
    capacity_mb:
        Total memory reserved for warm containers.  ``float("inf")`` models
        an unbounded pool (used to compute the paper's *Loose* sizing).
    """

    def __init__(self, capacity_mb: float) -> None:
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be >= 0")
        self.capacity_mb = capacity_mb
        self._containers: "OrderedDict[int, Container]" = OrderedDict()
        self._used_mb = 0.0
        self.peak_used_mb = 0.0

    # -- capacity -----------------------------------------------------------
    @property
    def used_mb(self) -> float:
        """Memory currently consumed by idle warm containers."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used_mb

    def fits(self, container: Container) -> bool:
        """Whether ``container`` fits in the remaining capacity."""
        return container.memory_mb <= self.free_mb

    # -- membership ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._containers)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._containers

    def __iter__(self) -> Iterator[Container]:
        """Iterate least-recently-used first."""
        return iter(self._containers.values())

    def containers(self) -> List[Container]:
        """Snapshot list, least-recently-used first."""
        return list(self._containers.values())

    def get(self, container_id: int) -> Optional[Container]:
        """Look up by id; returns None when absent."""
        return self._containers.get(container_id)

    # -- mutation ----------------------------------------------------------
    def add(self, container: Container) -> None:
        """Insert an idle container as most-recently-used.

        Raises
        ------
        PoolFullError
            When the container does not fit; callers evict first.
        ValueError
            When the container is not idle or already present.
        """
        if not container.is_idle:
            raise ValueError(
                f"container {container.container_id} is {container.state.value}, "
                "only idle containers can be pooled"
            )
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already pooled")
        if not self.fits(container):
            raise PoolFullError(
                f"container {container.container_id} "
                f"({container.memory_mb:.0f}MB) exceeds free capacity "
                f"({self.free_mb:.0f}MB)"
            )
        self._containers[container.container_id] = container
        self._used_mb += container.memory_mb
        self.peak_used_mb = max(self.peak_used_mb, self._used_mb)

    def remove(self, container_id: int) -> Container:
        """Remove and return a pooled container (claimed or evicted)."""
        container = self._containers.pop(container_id, None)
        if container is None:
            raise KeyError(f"container {container_id} not in pool")
        self._used_mb -= container.memory_mb
        # Guard against float drift accumulating below zero.
        if self._used_mb < 1e-9:
            self._used_mb = 0.0
        return container

    def touch(self, container_id: int) -> None:
        """Mark a container most-recently-used (moves it to the LRU tail)."""
        if container_id not in self._containers:
            raise KeyError(f"container {container_id} not in pool")
        self._containers.move_to_end(container_id)

    def lru_order(self) -> List[Container]:
        """Containers least-recently-used first (eviction candidates)."""
        return list(self._containers.values())


class PoolSet:
    """One warm pool per worker (the paper's per-worker reserved memory).

    The scheduler sees the union of all idle containers, but capacity is
    enforced per shard: a container is pooled on the worker that hosts it,
    and eviction policies operate on that worker's shard only.  With
    ``n_shards=1`` this degenerates to the single global pool.
    """

    def __init__(self, capacity_mb: float, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be >= 0")
        self.n_shards = n_shards
        per_shard = capacity_mb / n_shards
        self._shards = [WarmPool(per_shard) for _ in range(n_shards)]
        self._shard_of: dict[int, int] = {}

    # -- shard access ---------------------------------------------------------
    def shard(self, index: int) -> WarmPool:
        """The shard at ``index`` (wrapping)."""
        return self._shards[index % self.n_shards]

    def shard_of(self, container_id: int) -> WarmPool:
        """The shard currently holding ``container_id``."""
        return self._shards[self._shard_of[container_id]]

    # -- aggregate capacity ----------------------------------------------------
    @property
    def capacity_mb(self) -> float:
        return sum(s.capacity_mb for s in self._shards)

    @property
    def used_mb(self) -> float:
        return sum(s.used_mb for s in self._shards)

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    @property
    def peak_used_mb(self) -> float:
        # Aggregate peak is approximated by the sum of shard peaks; exact
        # for n_shards == 1 (the default configuration).
        return sum(s.peak_used_mb for s in self._shards)

    # -- membership -------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._shard_of

    def get(self, container_id: int) -> Optional[Container]:
        """Look up by id; returns None when absent."""
        index = self._shard_of.get(container_id)
        if index is None:
            return None
        return self._shards[index].get(container_id)

    def containers(self) -> List[Container]:
        """All idle containers, least-recently-used first."""
        return self.lru_order()

    def lru_order(self) -> List[Container]:
        """All idle containers, least-recently-used first (merged)."""
        merged: List[Container] = []
        for s in self._shards:
            merged.extend(s.lru_order())
        merged.sort(key=lambda c: (c.last_used_at, c.container_id))
        return merged

    # -- mutation ---------------------------------------------------------------
    def add(self, container: Container, shard_index: int) -> None:
        """Pool ``container`` on its worker's shard."""
        shard = self._shards[shard_index % self.n_shards]
        shard.add(container)
        self._shard_of[container.container_id] = shard_index % self.n_shards

    def remove(self, container_id: int) -> Container:
        """Remove and return a pooled container from its shard."""
        index = self._shard_of.pop(container_id, None)
        if index is None:
            raise KeyError(f"container {container_id} not pooled")
        return self._shards[index].remove(container_id)
