"""Fixed-capacity warm container pool with an O(1) match index.

The pool holds *idle* warm containers up to a memory capacity in MB (the
paper's fix-sized warm resource pool).  Busy containers are tracked by the
simulator, not the pool; only keep-alive decisions consume pool capacity.

The pool maintains LRU ordering (most recently used last) so eviction
policies and matching tie-breaks can iterate in recency order.

Beyond membership, each pool maintains a **match index**: three dicts
mapping level-fingerprint prefixes (see
``PackageSet.level_fingerprints``) to the idle containers whose image
shares that prefix.  A function image with fingerprints ``(f1, f2, f3)``
then finds

* its exact (L3) candidates under key ``(f1, f2, f3)``,
* its L2-or-deeper candidates under key ``(f1, f2)``, and
* its L1-or-deeper candidates under key ``f1``,

so :meth:`WarmPool.best_match` and :meth:`WarmPool.match_depth_counts` are
dictionary lookups instead of linear scans over the pool.  The index is
keyed by the fingerprints a container had when it was added (kept per
container id), so removal stays correct even if a caller mutates a pooled
container's image -- re-adding after a repack re-keys it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.containers.container import Container
from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel


class PoolFullError(RuntimeError):
    """Raised when adding a container would exceed the pool capacity."""


def _mru_key(container: Container) -> Tuple[float, int]:
    """Recency sort key: greater means more recently used."""
    return (container.last_used_at, container.container_id)


class WarmPool:
    """A memory-bounded collection of idle warm containers.

    Parameters
    ----------
    capacity_mb:
        Total memory reserved for warm containers.  ``float("inf")`` models
        an unbounded pool (used to compute the paper's *Loose* sizing).
    """

    def __init__(self, capacity_mb: float) -> None:
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be >= 0")
        self.capacity_mb = capacity_mb
        self._containers: "OrderedDict[int, Container]" = OrderedDict()
        self._used_mb = 0.0
        self.peak_used_mb = 0.0
        # Match index: fingerprint prefix -> {container_id: Container}
        # (insertion-ordered; MRU selection still resolves ties by
        # (last_used_at, container_id) for exact LRU-scan parity).
        self._idx_l1: Dict[int, Dict[int, Container]] = {}
        self._idx_l2: Dict[Tuple[int, int], Dict[int, Container]] = {}
        self._idx_l3: Dict[Tuple[int, int, int], Dict[int, Container]] = {}
        self._index_keys: Dict[int, Tuple[int, int, int]] = {}

    # -- capacity -----------------------------------------------------------
    @property
    def used_mb(self) -> float:
        """Memory currently consumed by idle warm containers."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        """Remaining warm-pool capacity."""
        return self.capacity_mb - self._used_mb

    def fits(self, container: Container) -> bool:
        """Whether ``container`` fits in the remaining capacity."""
        return container.memory_mb <= self.free_mb

    # -- membership ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._containers)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._containers

    def __iter__(self) -> Iterator[Container]:
        """Iterate least-recently-used first."""
        return iter(self._containers.values())

    def containers(self) -> List[Container]:
        """Snapshot list, least-recently-used first."""
        return list(self._containers.values())

    def get(self, container_id: int) -> Optional[Container]:
        """Look up by id; returns None when absent."""
        return self._containers.get(container_id)

    # -- mutation ----------------------------------------------------------
    def add(self, container: Container) -> None:
        """Insert an idle container as most-recently-used.

        Raises
        ------
        PoolFullError
            When the container does not fit; callers evict first.
        ValueError
            When the container is not idle or already present.
        """
        if not container.is_idle:
            raise ValueError(
                f"container {container.container_id} is {container.state.value}, "
                "only idle containers can be pooled"
            )
        if container.container_id in self._containers:
            raise ValueError(f"container {container.container_id} already pooled")
        if not self.fits(container):
            raise PoolFullError(
                f"container {container.container_id} "
                f"({container.memory_mb:.0f}MB) exceeds free capacity "
                f"({self.free_mb:.0f}MB)"
            )
        cid = container.container_id
        self._containers[cid] = container
        self._used_mb += container.memory_mb
        self.peak_used_mb = max(self.peak_used_mb, self._used_mb)
        fps = container.image.fingerprints
        self._idx_l1.setdefault(fps[0], {})[cid] = container
        self._idx_l2.setdefault(fps[:2], {})[cid] = container
        self._idx_l3.setdefault(fps, {})[cid] = container
        self._index_keys[cid] = fps

    def remove(self, container_id: int) -> Container:
        """Remove and return a pooled container (claimed or evicted)."""
        container = self._containers.pop(container_id, None)
        if container is None:
            raise KeyError(f"container {container_id} not in pool")
        self._used_mb -= container.memory_mb
        # Guard against float drift accumulating below zero.
        if self._used_mb < 1e-9:
            self._used_mb = 0.0
        fps = self._index_keys.pop(container_id)
        for index, key in (
            (self._idx_l1, fps[0]),
            (self._idx_l2, fps[:2]),
            (self._idx_l3, fps),
        ):
            bucket = index[key]
            del bucket[container_id]
            if not bucket:
                del index[key]
        return container

    def touch(self, container_id: int) -> None:
        """Mark a container most-recently-used (moves it to the LRU tail)."""
        if container_id not in self._containers:
            raise KeyError(f"container {container_id} not in pool")
        self._containers.move_to_end(container_id)

    def lru_order(self) -> List[Container]:
        """Containers least-recently-used first (eviction candidates)."""
        return list(self._containers.values())

    def oldest(self) -> Optional[Container]:
        """The least-recently-used pooled container (None when empty)."""
        if not self._containers:
            return None
        return next(iter(self._containers.values()))

    # -- match index --------------------------------------------------------
    def match_candidates(
        self, image: FunctionImage, level: MatchLevel
    ) -> List[Container]:
        """Idle containers matching ``image`` at least at ``level``.

        Returned in index insertion order (oldest first); ``NO_MATCH``
        returns every pooled container.
        """
        f = image.fingerprints
        if level is MatchLevel.NO_MATCH:
            return list(self._containers.values())
        if level is MatchLevel.L3:
            bucket = self._idx_l3.get(f)
        elif level is MatchLevel.L2:
            bucket = self._idx_l2.get(f[:2])
        else:
            bucket = self._idx_l1.get(f[0])
        return list(bucket.values()) if bucket else []

    def match_depth_counts(self, image: FunctionImage) -> Tuple[int, int, int, int]:
        """Idle-container counts per exact Table-I level for ``image``.

        Returns ``(n_no_match, n_L1, n_L2, n_L3)`` -- the per-depth idle
        counts the state encoder and schedulers need, straight from the
        index (no scan).
        """
        f = image.fingerprints
        n3 = len(self._idx_l3.get(f, ()))
        n23 = len(self._idx_l2.get(f[:2], ()))
        n123 = len(self._idx_l1.get(f[0], ()))
        return (len(self._containers) - n123, n123 - n23, n23 - n3, n3)

    def best_match(
        self, image: FunctionImage
    ) -> Tuple[Optional[Container], MatchLevel]:
        """Deepest-matching idle container for ``image`` via the index.

        Ties at the deepest level are broken most-recently-used first
        (greatest ``(last_used_at, container_id)``), matching the LRU-scan
        semantics of ``SchedulingContext.reusable_containers()[0]``.  Cost
        is three dict lookups plus a max() over the deepest bucket only.
        """
        f = image.fingerprints
        bucket = self._idx_l3.get(f)
        if bucket:
            return max(bucket.values(), key=_mru_key), MatchLevel.L3
        bucket = self._idx_l2.get(f[:2])
        if bucket:
            return max(bucket.values(), key=_mru_key), MatchLevel.L2
        bucket = self._idx_l1.get(f[0])
        if bucket:
            return max(bucket.values(), key=_mru_key), MatchLevel.L1
        return None, MatchLevel.NO_MATCH

    def best_exact(self, image: FunctionImage) -> Optional[Container]:
        """Most-recently-used exact (L3) match for ``image``, or None.

        Equivalent to ``PoolSet.exact_matches(image)[0]`` on a single
        shard -- the bucket max under ``(last_used_at, container_id)`` is
        the head of the MRU-sorted candidate list -- without building or
        sorting the list.  This is the lane kernel's fast path for the
        LRU/KeepAlive decision rule.
        """
        bucket = self._idx_l3.get(image.fingerprints)
        if not bucket:
            return None
        return max(bucket.values(), key=_mru_key)

    def exact_matches(self, image: FunctionImage) -> List[Container]:
        """Idle containers fully (L3) matching ``image``, MRU first.

        Single-shard equivalent of :meth:`PoolSet.exact_matches`, so the
        lane kernel's scripted contexts can hand schedulers a ``pool``
        that duck-types the set.
        """
        bucket = self._idx_l3.get(image.fingerprints)
        if not bucket:
            return []
        matches = list(bucket.values())
        matches.sort(key=_mru_key, reverse=True)
        return matches

    def best_at_level(
        self, image: FunctionImage, level: MatchLevel
    ) -> Optional[Container]:
        """Most-recently-used container matching ``image`` at *exactly*
        ``level`` (no deeper), or None.

        Equivalent to the first hit of a ``reusable_containers()`` scan
        filtered to that level -- the scan orders deepest level first and
        MRU within a level, so the exact-level MRU maximum is the same
        container.  Containers at exactly L2 are the L2-prefix bucket
        minus the L3 bucket; exactly L1 is the L1 bucket minus the L2
        bucket (which contains the L3 one).  This is the lane kernel's
        fast path for the Offline-Q level-targeted pick.
        """
        f = image.fingerprints
        if level is MatchLevel.L3:
            bucket = self._idx_l3.get(f)
            if not bucket:
                return None
            return max(bucket.values(), key=_mru_key)
        if level is MatchLevel.L2:
            bucket = self._idx_l2.get(f[:2])
            deeper = self._idx_l3.get(f)
        elif level is MatchLevel.L1:
            bucket = self._idx_l1.get(f[0])
            deeper = self._idx_l2.get(f[:2])
        else:
            raise ValueError("best_at_level requires a reusable match level")
        if not bucket:
            return None
        if deeper:
            candidates = [c for cid, c in bucket.items() if cid not in deeper]
            if not candidates:
                return None
            return max(candidates, key=_mru_key)
        return max(bucket.values(), key=_mru_key)

    def expire_older_than(self, threshold: float) -> List[Container]:
        """Pop and return LRU-head containers with ``last_used_at < threshold``.

        Under a fixed TTL, insertion order (the simulator never reorders
        without re-claiming) implies idle-time order, so only the
        actually-expired heads are inspected -- O(expired + 1) per call
        instead of an O(pool) scan per event.
        """
        expired: List[Container] = []
        while self._containers:
            head = next(iter(self._containers.values()))
            if head.last_used_at >= threshold:
                break
            expired.append(self.remove(head.container_id))
        return expired


class PoolSet:
    """One warm pool per worker (the paper's per-worker reserved memory).

    The scheduler sees the union of all idle containers, but capacity is
    enforced per shard: a container is pooled on the worker that hosts it,
    and eviction policies operate on that worker's shard only.  With
    ``n_shards=1`` this degenerates to the single global pool.

    Match-index queries (:meth:`best_match`, :meth:`match_depth_counts`,
    :meth:`exact_matches`) aggregate the per-shard indexes.
    """

    def __init__(self, capacity_mb: float, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be >= 0")
        self.n_shards = n_shards
        per_shard = capacity_mb / n_shards
        self._shards = [WarmPool(per_shard) for _ in range(n_shards)]
        self._shard_of: dict[int, int] = {}

    # -- shard access ---------------------------------------------------------
    def shard(self, index: int) -> WarmPool:
        """The shard at ``index`` (wrapping)."""
        return self._shards[index % self.n_shards]

    def shard_of(self, container_id: int) -> WarmPool:
        """The shard currently holding ``container_id``."""
        return self._shards[self._shard_of[container_id]]

    # -- aggregate capacity ----------------------------------------------------
    @property
    def capacity_mb(self) -> float:
        """Total capacity across shards."""
        return sum(s.capacity_mb for s in self._shards)

    @property
    def used_mb(self) -> float:
        """Memory consumed by idle containers across shards."""
        return sum(s.used_mb for s in self._shards)

    @property
    def free_mb(self) -> float:
        """Remaining capacity across shards."""
        return self.capacity_mb - self.used_mb

    @property
    def peak_used_mb(self) -> float:
        """Aggregate peak warm memory (sum of shard peaks)."""
        # Aggregate peak is approximated by the sum of shard peaks; exact
        # for n_shards == 1 (the default configuration).
        return sum(s.peak_used_mb for s in self._shards)

    # -- membership -------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self._shard_of

    def get(self, container_id: int) -> Optional[Container]:
        """Look up by id; returns None when absent."""
        index = self._shard_of.get(container_id)
        if index is None:
            return None
        return self._shards[index].get(container_id)

    def containers(self) -> List[Container]:
        """All idle containers, least-recently-used first."""
        return self.lru_order()

    def lru_order(self) -> List[Container]:
        """All idle containers, least-recently-used first (merged)."""
        if self.n_shards == 1:
            merged = self._shards[0].lru_order()
        else:
            merged = []
            for s in self._shards:
                merged.extend(s.lru_order())
        merged.sort(key=lambda c: (c.last_used_at, c.container_id))
        return merged

    # -- match index ------------------------------------------------------------
    def best_match(
        self, image: FunctionImage
    ) -> Tuple[Optional[Container], MatchLevel]:
        """Deepest-matching idle container across all shards.

        Ties at the deepest level break most-recently-used first (greatest
        ``(last_used_at, container_id)``), matching the LRU-scan semantics.
        """
        if self.n_shards == 1:
            return self._shards[0].best_match(image)
        best_container: Optional[Container] = None
        best_level = MatchLevel.NO_MATCH
        for shard in self._shards:
            container, level = shard.best_match(image)
            if container is None:
                continue
            if level > best_level or (
                level == best_level
                and best_container is not None
                and _mru_key(container) > _mru_key(best_container)
            ):
                best_container, best_level = container, level
        return best_container, best_level

    def match_depth_counts(self, image: FunctionImage) -> Tuple[int, int, int, int]:
        """Per-level idle counts ``(n_no_match, n_L1, n_L2, n_L3)``, summed."""
        if self.n_shards == 1:
            return self._shards[0].match_depth_counts(image)
        totals = [0, 0, 0, 0]
        for shard in self._shards:
            counts = shard.match_depth_counts(image)
            for i in range(4):
                totals[i] += counts[i]
        return tuple(totals)

    def exact_matches(self, image: FunctionImage) -> List[Container]:
        """Idle containers fully (L3) matching ``image``, MRU first."""
        matches: List[Container] = []
        for shard in self._shards:
            matches.extend(shard.match_candidates(image, MatchLevel.L3))
        matches.sort(key=_mru_key, reverse=True)
        return matches

    # -- mutation ---------------------------------------------------------------
    def add(self, container: Container, shard_index: int) -> None:
        """Pool ``container`` on its worker's shard."""
        shard = self._shards[shard_index % self.n_shards]
        shard.add(container)
        self._shard_of[container.container_id] = shard_index % self.n_shards

    def remove(self, container_id: int) -> Container:
        """Remove and return a pooled container from its shard."""
        index = self._shard_of.pop(container_id, None)
        if index is None:
            raise KeyError(f"container {container_id} not pooled")
        return self._shards[index].remove(container_id)

    def expire_older_than(self, threshold: float) -> List[Container]:
        """Pop all containers idle since before ``threshold``, LRU-heads only."""
        expired: List[Container] = []
        for shard in self._shards:
            for container in shard.expire_older_than(threshold):
                self._shard_of.pop(container.container_id, None)
                expired.append(container)
        return expired
