"""Serverless cluster simulator substrate.

A discrete-event simulator of an OpenWhisk-style serverless platform: a
stream of function invocations arrives, a pluggable scheduler decides between
cold start and multi-level warm reuse, containers execute and return to a
fixed-capacity warm pool, and a pluggable eviction policy reclaims space.
"""

from repro.cluster.events import Event, EventKind, EventQueue
from repro.cluster.eventloop import (
    EventLoop,
    SimulationClock,
    TimeSource,
    VirtualClock,
    WallClock,
)
from repro.cluster.faults import FaultConfig, FaultModel
from repro.cluster.pool import PoolFullError, PoolSet, WarmPool
from repro.cluster.eviction import (
    EvictionPolicy,
    FaasCacheEviction,
    LRUEviction,
    RejectNewcomerEviction,
)
from repro.cluster.lifecycle import ContainerLifecycle, InvalidDecisionError
from repro.cluster.placement import PlacementEngine
from repro.cluster.sketches import QuantileSketch
from repro.cluster.telemetry import BoundedTelemetry, InvocationRecord, Telemetry
from repro.schedulers.base import Decision
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
)

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "EventLoop",
    "SimulationClock",
    "TimeSource",
    "VirtualClock",
    "WallClock",
    "WarmPool",
    "PoolSet",
    "PoolFullError",
    "FaultConfig",
    "FaultModel",
    "EvictionPolicy",
    "LRUEviction",
    "FaasCacheEviction",
    "RejectNewcomerEviction",
    "ContainerLifecycle",
    "PlacementEngine",
    "InvalidDecisionError",
    "Telemetry",
    "BoundedTelemetry",
    "QuantileSketch",
    "InvocationRecord",
    "ClusterSimulator",
    "Decision",
    "SimulationConfig",
    "SimulationResult",
]
