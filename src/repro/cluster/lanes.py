"""Multi-lane simulation kernel: many grid cells per process, lean and fast.

A grid sweep replays thousands of *independent* simulations -- one per
``(scheduler, workload, seed, capacity)`` cell.  The sequential path runs
each cell through the full :class:`~repro.cluster.simulator.ClusterSimulator`
stack: per-event :class:`~repro.cluster.events.Event` objects, the layered
lifecycle (cleaner, volumes, placement), a 16-column telemetry append per
invocation, and a :class:`~repro.schedulers.base.SchedulingContext` whose
construction sorts the whole pool per arrival.  None of that machinery is
needed to produce the *summary* a grid cell actually carries.

This module advances many **lanes** (one lane = one cell) per step through a
struct-of-arrays kernel:

* **Batched arrival ingestion** -- each workload draw is lowered once into an
  :class:`ArrivalTable`: numpy columns (arrival time, execution time,
  function index, invocation id) plus a per-``(function, match level)``
  startup-latency table computed through the exact same
  :meth:`~repro.containers.costmodel.StartupCostModel.breakdown` call the
  sequential driver makes per arrival.  The hot loop never touches an
  :class:`~repro.workloads.workload.Invocation` object on the closed-form
  paths.  Tables are shared by every lane replaying the same draw;
  :meth:`ArrivalTable.from_stream` lowers a lazy arrival stream into
  bounded columnar chunks for O(1)-memory lane replay
  (:func:`run_stream_lanes`).
* **Lockstep stepping** -- :meth:`LaneKernel.run` advances every active lane
  to its ``k``-th arrival per step: due completions drain, TTL sweeps run,
  then the step's decisions are scored as a batch
  (:meth:`LaneKernel._score_batch`) against each lane's warm-pool match
  index before being applied.  The active-lane bookkeeping (arrival
  cursors, remaining counts) is vectorized numpy.
* **Shared pool semantics** -- each lane reuses the *real*
  :class:`~repro.cluster.pool.WarmPool` and
  :class:`~repro.cluster.eviction.EvictionPolicy` objects, so eviction
  ordering, TTL expiry, capacity accounting and peak tracking are identical
  to the sequential simulator by construction, not by reimplementation.

Every scheduler registry key (:data:`SCHEDULER_CLASS_NAMES`) runs in a lane,
through one of two modes:

* **Closed-form decision codes** -- LRU/KeepAlive (MRU exact match),
  Greedy-Match (deepest match), ColdOnly, Zygote (smallest covering
  same-OS container, preserved in place), W-AlwaysAdopt (cheapest same-OS
  delta cost, memoized per ``(function, container fingerprints)``) and
  Offline-Q (masked arg-max over the function's Q-row, bootstrapped from
  the same greedy reference rollout ``observe_workload`` runs).  These
  resolve through the warm pool's match index without instantiating the
  scheduler at all.
* **Scripted decisions** -- FaasCache, Lookahead, MPC-Prewarm and
  Pagurus-Lend keep their real ``decide()``: the lane builds the registry
  scheduler, hands it a per-arrival :class:`~repro.schedulers.base.\
SchedulingContext` backed by the lane's own pool, and replays the returned
  decision -- including any attached
  :class:`~repro.schedulers.base.PrewarmRequest` /
  :class:`~repro.schedulers.base.LendRequest` proactive actions -- through
  the lane lifecycle.  The vectorized latency table, tuple completion heap
  and columnar accumulation are shared either way.

**Byte-identical contract.**  For every registry scheduler and the default
grid configuration (no worker concurrency limit, single pool shard, faults
off), a lane's :meth:`_Lane.summary` is bit-equal to
``ClusterSimulator.run(...).telemetry.summary()`` for the same cell: same
event order (``(time, priority, seq)`` with arrivals before same-time
completions), same decisions, same floating-point accumulation order for
latency totals and memory peaks, same pre-warm / lending counter blocks.
Bounded lanes (``LaneSpec(bounded=True)``, used by the streaming replay)
fold latencies the way :class:`~repro.cluster.telemetry.BoundedTelemetry`
does -- running total plus quantile sketch -- so ``repro experiment stream
--lanes`` is byte-identical to ``ClusterSimulator.run_stream`` with bounded
telemetry.  The ``lanes_vs_sequential`` and ``streaming_vs_materialized``
differential oracles and the hypothesis suites in ``tests/test_lanes.py``
enforce all of this.

Wired into :func:`repro.experiments.parallel.run_grid` via its ``lanes``
argument and the CLI's ``repro simulate --lanes`` /
``repro experiment stream --lanes`` / ``runall --lanes`` flags.
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cluster.eviction import (
    EvictionPolicy,
    LRUEviction,
    RejectNewcomerEviction,
)
from repro.cluster.pool import WarmPool, _mru_key
from repro.cluster.sketches import QuantileSketch
from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel, match_level
from repro.schedulers.base import PrewarmRequest, SchedulingContext
from repro.workloads.workload import Invocation, Workload

__all__ = [
    "ArrivalTable",
    "LANE_SCHEDULERS",
    "LaneKernel",
    "LaneResult",
    "LaneSpec",
    "SCHEDULER_CLASS_NAMES",
    "STREAM_CHUNK_SIZE",
    "lane_mode",
    "lane_supported_scheduler",
    "run_stream_lanes",
]

#: The scheduler registry: CLI/grid key -> class name in
#: :mod:`repro.schedulers`.  This is the single source of truth shared by
#: :data:`repro.experiments.parallel.SCHEDULER_FACTORIES` (which builds the
#: sequential drivers from it) and the lane kernel's scripted mode (which
#: instantiates the same classes lazily).
SCHEDULER_CLASS_NAMES: Dict[str, str] = {
    "lru": "LRUScheduler",
    "faascache": "FaasCacheScheduler",
    "keepalive": "KeepAliveScheduler",
    "greedy": "GreedyMatchScheduler",
    "coldonly": "ColdOnlyScheduler",
    "lookahead": "LookaheadScheduler",
    "zygote": "ZygoteScheduler",
    "walways": "AlwaysAdoptScheduler",
    "mpc": "MPCScheduler",
    "lending": "PagurusLendingScheduler",
    "offline": "OfflineQScheduler",
}

#: Decision fast-path codes (one per supported scheduler family).
_DECIDE_COLD = 0      # always cold-start (ColdOnly)
_DECIDE_EXACT = 1     # MRU exact (L3) match or cold (LRU, KeepAlive)
_DECIDE_BEST = 2      # deepest match at any level or cold (Greedy-Match)
_DECIDE_ZYGOTE = 3    # smallest covering same-OS container, else exact
_DECIDE_WALWAYS = 4   # cheapest same-OS delta cost vs the cold latency
_DECIDE_OFFLINE = 5   # masked arg-max over the function's offline Q-row
_DECIDE_SCRIPTED = 6  # drive the registry scheduler's real decide()

#: Schedulers the lane kernel can replay: registry key ->
#: ``(display name, decision code, eviction-policy factory)``.  Closed-form
#: entries carry the method name and eviction pairing of their scheduler;
#: scripted entries carry ``(None, _DECIDE_SCRIPTED, None)`` -- the lane
#: builds the real scheduler and takes its ``name`` and
#: ``make_eviction_policy()`` (defaulting to LRU, like the simulator).
#: The closed-form fast paths are provably identical to the schedulers'
#: ``decide``: LRU and KeepAlive take the most-recently-used exact match
#: (``SchedulingContext.exact_matches()[0]``), Greedy-Match takes
#: ``pool.best_match`` when reusable, ColdOnly always cold-starts, Zygote
#: prefers the smallest covering same-OS container (``preserve_image``),
#: W-AlwaysAdopt minimizes the same-OS delta cost with a strict-less scan in
#: LRU order, and Offline-Q replays the masked arg-max over its
#: trace-fitted Q-table -- all of which resolve through the same warm-pool
#: match index (and interned fingerprints) the kernel queries directly.
LANE_SCHEDULERS: Dict[
    str, Tuple[Optional[str], int, Optional[Callable[[], EvictionPolicy]]]
] = {
    "lru": ("LRU", _DECIDE_EXACT, LRUEviction),
    "keepalive": (
        "KeepAlive",
        _DECIDE_EXACT,
        lambda: RejectNewcomerEviction(ttl_s=600.0),
    ),
    "greedy": ("Greedy-Match", _DECIDE_BEST, LRUEviction),
    "coldonly": ("ColdOnly", _DECIDE_COLD, LRUEviction),
    "zygote": ("Zygote", _DECIDE_ZYGOTE, LRUEviction),
    "walways": ("W-AlwaysAdopt", _DECIDE_WALWAYS, LRUEviction),
    "offline": ("Offline-Q", _DECIDE_OFFLINE, LRUEviction),
    "faascache": (None, _DECIDE_SCRIPTED, None),
    "lookahead": (None, _DECIDE_SCRIPTED, None),
    "mpc": (None, _DECIDE_SCRIPTED, None),
    "lending": (None, _DECIDE_SCRIPTED, None),
}

#: Default arrival-chunk size for streaming lane replay.  Large enough to
#: amortize the per-chunk columnar lowering, small enough that chunk buffers
#: stay O(1) in the stream length.
STREAM_CHUNK_SIZE = 4096

#: Completion-event kind codes inside a lane's heap.
_STARTUP_DONE = 0
_EXECUTION_DONE = 1

#: The cold-start decision tuple: (container, match, preserve, actions).
_COLD: Tuple[Optional[Container], int, bool, tuple] = (None, 0, False, ())

_MATCH_MEMBERS: Tuple[MatchLevel, ...] = tuple(MatchLevel)

#: Zygote covering-test memo: (function fingerprints, container
#: fingerprints) -> whether the container's package set covers the
#: function's.  Fingerprint interning is exact (equal fingerprints iff
#: equal package sets), so the memo key fully determines the answer; the
#: table is process-wide like the fingerprint intern tables themselves.
_COVERS: Dict[Tuple[tuple, tuple], bool] = {}

_MISSING = object()


def lane_supported_scheduler(key: str) -> bool:
    """Whether scheduler registry ``key`` has a lane path (all keys do)."""
    return key in LANE_SCHEDULERS


def lane_mode(key: str) -> str:
    """``"closed-form"`` or ``"scripted"`` for a registry scheduler key."""
    entry = LANE_SCHEDULERS[key]
    return "scripted" if entry[1] == _DECIDE_SCRIPTED else "closed-form"


class ArrivalTable:
    """Columnar (struct-of-arrays) lowering of one workload draw.

    Built once per ``(workload, cost model)`` and shared read-only by every
    lane that replays the draw.  Columns are parallel arrays over the
    workload's arrival order (which the workload constructor already sorts
    by ``(arrival_time, invocation_id)`` -- the same order the event queue
    pops same-time arrivals in):

    ``times`` / ``exec_s`` / ``ids``
        Arrival timestamps, execution durations (float64) and invocation
        ids (int64; scripted lanes rebuild the exact
        :class:`~repro.workloads.workload.Invocation` from them).
    ``fn_ix``
        Index into :attr:`specs` for each arrival (int32).
    ``latency``
        ``latency[fn][int(match)]`` -- the startup latency of starting
        ``specs[fn]`` at a given Table-I match level, precomputed through
        the same cost-model :meth:`~repro.containers.costmodel.\
StartupCostModel.breakdown` the sequential driver evaluates per arrival
        (breakdowns are pure and order-independent, so the floats are
        bit-identical).

    :attr:`workload` keeps the source workload for schedulers that need
    ``observe_workload`` (Lookahead's clairvoyance, Offline-Q's bootstrap
    rollout); stream chunks built by :meth:`from_stream` carry ``None``
    there, matching the streaming driver, which never calls it.
    """

    def __init__(
        self, workload: Workload, cost_model: Optional[StartupCostModel] = None
    ) -> None:
        cost_model = cost_model or StartupCostModel()
        self._init_from(workload.name, list(workload), cost_model, [], {}, [])
        self.workload: Optional[Workload] = workload

    def _init_from(
        self,
        name: str,
        invocations: List[Invocation],
        cost_model: StartupCostModel,
        specs: List,
        index_of: Dict[int, int],
        latency: List[List[float]],
    ) -> None:
        """Populate the columns from ``invocations``.

        ``specs`` / ``index_of`` / ``latency`` are the (shared, append-only)
        function registries -- chunk tables from one stream pass the same
        lists so function indices stay stable across chunks and per-spec
        latency rows are computed exactly once, at first encounter.
        """
        self.name = name
        self.cost_model = cost_model
        self.workload = None
        self.n = len(invocations)
        self.times = np.fromiter(
            (inv.arrival_time for inv in invocations),
            dtype=np.float64, count=self.n,
        )
        self.exec_s = np.fromiter(
            (inv.execution_time_s for inv in invocations),
            dtype=np.float64, count=self.n,
        )
        self.ids = np.fromiter(
            (inv.invocation_id for inv in invocations),
            dtype=np.int64, count=self.n,
        )
        fn_ix = np.empty(self.n, dtype=np.int32)
        for i, inv in enumerate(invocations):
            spec = inv.spec
            key = id(spec)
            ix = index_of.get(key)
            if ix is None:
                ix = index_of[key] = len(specs)
                specs.append(spec)
                latency.append([
                    cost_model.breakdown(
                        spec.image, level, spec.function_init_s
                    ).total_s
                    for level in MatchLevel
                ])
            fn_ix[i] = ix
        self.fn_ix = fn_ix
        self.specs = specs
        self.latency = latency

    @classmethod
    def from_stream(
        cls,
        stream: Iterable[Invocation],
        chunk_size: int = STREAM_CHUNK_SIZE,
        cost_model: Optional[StartupCostModel] = None,
    ) -> Iterator["ArrivalTable"]:
        """Lower a lazy arrival stream into bounded columnar chunks.

        Yields one table per ``chunk_size`` arrivals (the final chunk may
        be shorter; an empty stream yields nothing).  All chunks share one
        function registry -- ``specs`` / ``fn_ix`` indices are stable
        across chunks and each function's latency row is computed once --
        so memory stays O(chunk + #functions) regardless of stream length.
        Chunk tables carry ``workload=None``: the streaming driver never
        calls ``observe_workload`` either.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        cost_model = cost_model or StartupCostModel()
        name = getattr(stream, "name", "<stream>")
        specs: List = []
        index_of: Dict[int, int] = {}
        latency: List[List[float]] = []
        source = iter(stream)
        while True:
            block = list(itertools.islice(source, chunk_size))
            if not block:
                return
            table = cls.__new__(cls)
            table._init_from(name, block, cost_model, specs, index_of, latency)
            yield table


def _offline_policy_for(table: ArrivalTable):
    """The Offline-Q policy an ``observe_workload`` bootstrap would fit.

    Replicates :meth:`OfflineQScheduler.observe_workload` exactly: a greedy
    reference rollout of the table's workload on an unbounded pool, its
    decision lines fitted into a tabular Q-policy.  The rollout is
    deterministic (same workload, same rollout, same policy), so caching
    the result on the table amortizes the bootstrap across every lane and
    capacity replaying the same draw -- the sequential driver refits per
    cell and gets bit-identical Q-values.  ``None`` when the table has no
    materialized workload (stream chunks): the streaming driver never
    bootstraps either, leaving Offline-Q on its greedy fallback.
    """
    if table.workload is None:
        return None
    policy = getattr(table, "_offline_policy", _MISSING)
    if policy is _MISSING:
        # Deferred imports: lanes must stay importable without dragging the
        # whole simulator/DRL stack in at package-import time.
        from repro.cluster.simulator import ClusterSimulator, SimulationConfig
        from repro.drl.offline import fit_from_traces, trace_lines_from_result
        from repro.schedulers.greedy import GreedyMatchScheduler

        reference = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=float("inf")),
            reference.make_eviction_policy(),
        )
        result = sim.run(table.workload, reference)
        policy = fit_from_traces([trace_lines_from_result(result)])
        table._offline_policy = policy
    return policy


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a kernel run: a scheduler replaying a workload draw.

    ``scheduler`` must be a :data:`LANE_SCHEDULERS` key; ``table`` is the
    (shareable) columnar lowering of the lane's workload and
    ``capacity_mb`` the warm-pool capacity of the cell.  ``bounded``
    selects :class:`~repro.cluster.telemetry.BoundedTelemetry`-equivalent
    folding (running totals plus quantile sketches instead of a latency
    column) -- the streaming replay's O(1)-memory mode.
    :func:`run_stream_lanes` passes ``table=None`` and binds stream chunks
    as they arrive.
    """

    scheduler: str
    table: Optional[ArrivalTable]
    capacity_mb: float
    bounded: bool = False


@dataclass(frozen=True)
class LaneResult:
    """Outcome of one lane: the cell's method name and telemetry summary."""

    method: str
    summary: Dict[str, float]


class _Lane:
    """Mutable per-lane simulation state (pool, heap, counters).

    Only the fields the summary depends on are simulated; containers are
    real :class:`~repro.containers.container.Container` objects (the pool
    and eviction policies read their id, image, recency and idle state) but
    the checked state-machine transitions, cleaner, volumes and placement
    bookkeeping of the sequential lifecycle -- none of which influence a
    summary under the supported configuration -- are skipped.
    """

    __slots__ = (
        "table", "method", "decide_code", "scheduler", "eviction", "on_start",
        "ttl_s", "pool", "next_cid", "live_mb", "peak_live_mb", "cold",
        "evictions", "rejections", "ttl_expirations", "latencies", "heap",
        "seq", "arr_i", "bounded", "lat_n", "lat_total", "lat_sketch",
        "prewarmed", "lent", "prewarms_issued", "prewarm_reuses",
        "prewarm_wasted", "lends_issued", "lend_reuses", "walways_costs",
        "offline_policy", "offline_rows",
    )

    def __init__(self, spec: LaneSpec) -> None:
        display, decide_code, eviction_factory = LANE_SCHEDULERS[spec.scheduler]
        table = spec.table
        self.table = table
        self.decide_code = decide_code
        if decide_code == _DECIDE_SCRIPTED:
            # Deferred import: the schedulers package pulls in every policy
            # module; closed-form lanes never pay for it.
            import repro.schedulers as schedulers_pkg

            scheduler = getattr(
                schedulers_pkg, SCHEDULER_CLASS_NAMES[spec.scheduler]
            )()
            scheduler.reset()
            if table is not None and table.workload is not None and hasattr(
                scheduler, "observe_workload"
            ):
                scheduler.observe_workload(table.workload)
            self.scheduler = scheduler
            self.method = scheduler.name
            self.eviction = (
                scheduler.make_eviction_policy()
                if hasattr(scheduler, "make_eviction_policy")
                else LRUEviction()
            )
        else:
            self.scheduler = None
            self.method = display
            self.eviction = eviction_factory()
        # Bind the start hook only when the policy actually overrides the
        # base no-op (FaasCache's greedy-dual statistics); the closed-form
        # hot paths then skip the per-arrival call entirely.
        self.on_start = (
            self.eviction.on_function_start
            if type(self.eviction).on_function_start
            is not EvictionPolicy.on_function_start
            else None
        )
        self.ttl_s = self.eviction.ttl_s
        self.pool = WarmPool(spec.capacity_mb)
        self.next_cid = 1           # mirrors lifecycle's itertools.count(1)
        self.live_mb = 0.0
        self.peak_live_mb = 0.0
        self.cold = 0
        self.evictions = 0
        self.rejections = 0
        self.ttl_expirations = 0
        self.bounded = spec.bounded
        if spec.bounded:
            self.latencies = None
            self.lat_n = 0
            self.lat_total = 0.0
            self.lat_sketch = QuantileSketch(0.01)
        else:
            self.latencies = array("d")
            self.lat_n = 0
            self.lat_total = 0.0
            self.lat_sketch = None
        # Proactive-action bookkeeping, mirroring ContainerLifecycle's:
        # pre-warmed ids awaiting first claim, lent ids -> target function.
        self.prewarmed: set = set()
        self.lent: Dict[int, str] = {}
        self.prewarms_issued = 0
        self.prewarm_reuses = 0
        self.prewarm_wasted = 0
        self.lends_issued = 0
        self.lend_reuses = 0
        # W-AlwaysAdopt delta-cost memo: (fn index, container fingerprints)
        # -> delta total_s.  Sound because delta breakdowns depend only on
        # the two images' package sets, which interned fingerprints
        # determine exactly.
        self.walways_costs: Dict[tuple, float] = {}
        # Offline-Q: the trace-fitted policy (None -> greedy fallback, as
        # in the streaming driver) and a per-function Q-row cache.
        self.offline_policy = (
            _offline_policy_for(table)
            if decide_code == _DECIDE_OFFLINE and table is not None
            else None
        )
        self.offline_rows: Dict[int, Optional[tuple]] = {}
        # Completion heap: (time, seq, kind, container, exec_s).  All
        # completions share event priority 1, so (time, seq) alone orders
        # them exactly as the sequential queue does; only *relative* seq
        # order matters, so batch lanes start past the arrival count purely
        # to mirror the batch loader's numbering while stream lanes count
        # from zero across chunks.
        self.heap: List[Tuple[float, int, int, Container, float]] = []
        self.seq = table.n if table is not None else 0
        self.arr_i = 0

    # -- event handling ------------------------------------------------------
    def _forget(self, container: Container) -> None:
        """Destroy-side bookkeeping (live memory, pre-warm/lend counters)."""
        self.live_mb = max(0.0, self.live_mb - container.image.memory_mb)
        cid = container.container_id
        if self.prewarmed and cid in self.prewarmed:
            self.prewarmed.discard(cid)
            self.prewarm_wasted += 1
        if self.lent:
            self.lent.pop(cid, None)

    def _sweep(self, now: float) -> None:
        """Expire pooled containers idle past the TTL (per-pop sweep)."""
        expired = self.pool.expire_older_than(now - self.ttl_s)
        if expired:
            self.ttl_expirations += len(expired)
            for container in expired:
                self._forget(container)

    def _keep_alive(self, container: Container, now: float) -> None:
        """Pool a finished container through the eviction policy."""
        victims = self.eviction.select_victims(self.pool, container, now)
        if victims is None:
            self.rejections += 1
            self._forget(container)
            return
        if victims:
            self.evictions += len(victims)
            pool_remove = self.pool.remove
            for victim in victims:
                pool_remove(victim.container_id)
                self._forget(victim)
        self.pool.add(container)

    def drain_until(self, t: float) -> None:
        """Handle every completion strictly before ``t`` (the next arrival).

        Same-time completions yield to the arrival (arrivals carry event
        priority 0); each pop runs the TTL sweep at its own time before
        handling, mirroring ``EventLoop.pop_next``.
        """
        heap = self.heap
        ttl_active = self.ttl_s is not None
        while heap and heap[0][0] < t:
            time, _seq, kind, container, exec_s = heapq.heappop(heap)
            if ttl_active and len(self.pool):
                self._sweep(time)
            if kind == _STARTUP_DONE:
                heapq.heappush(
                    heap,
                    (time + exec_s, self.seq, _EXECUTION_DONE, container, 0.0),
                )
                self.seq += 1
            else:
                container.state = ContainerState.IDLE
                container.last_used_at = time
                self._keep_alive(container, time)

    def drain_all(self) -> None:
        """Run out every in-flight completion (the ``finish()`` drain)."""
        self.drain_until(float("inf"))

    # -- decision ------------------------------------------------------------
    def score(
        self, t: float
    ) -> Tuple[Optional[Container], int, bool, tuple]:
        """Decide the pending arrival.

        Returns ``(container or None, match, preserve_image, actions)`` --
        the same shape for every mode, so :meth:`apply` needs no dispatch.
        Runs the per-pop TTL sweep at the arrival's time first (the
        sequential loop sweeps on the arrival pop before the scheduler
        sees the context), then resolves the decision through the pool's
        match index (closed-form codes) or the registry scheduler's real
        ``decide`` (scripted mode).
        """
        if self.ttl_s is not None and len(self.pool):
            self._sweep(t)
        code = self.decide_code
        if code == _DECIDE_COLD:
            return _COLD
        table = self.table
        i = self.arr_i
        fn = table.fn_ix[i]
        spec = table.specs[fn]
        image = spec.image
        if code == _DECIDE_EXACT:
            container = self.pool.best_exact(image)
            if container is None:
                return _COLD
            return container, 3, False, ()
        if code == _DECIDE_BEST:
            container, level = self.pool.best_match(image)
            if container is None:
                return _COLD
            return container, int(level), False, ()
        if code == _DECIDE_ZYGOTE:
            return self._score_zygote(image)
        if code == _DECIDE_WALWAYS:
            return self._score_walways(fn, spec, image)
        if code == _DECIDE_OFFLINE:
            return self._score_offline(fn, spec, image)
        return self._score_scripted(t, i, spec)

    def _score_zygote(
        self, image
    ) -> Tuple[Optional[Container], int, bool, tuple]:
        """ZygoteScheduler: smallest covering same-OS container (preserved
        in place), else MRU exact match, else cold.

        Same-OS candidates are exactly the L1 index bucket (fingerprint
        interning makes ``os_packages`` equality a prefix-key lookup);
        ``same_configuration`` is full-fingerprint equality; covering is
        the memoized package-subset test.  The smallest-``(memory_mb, id)``
        and MRU-exact picks are order-free, so bucket iteration order is
        irrelevant.
        """
        pool = self.pool
        candidates = pool.match_candidates(image, MatchLevel.L1)
        if not candidates:
            return _COLD
        fps = image.fingerprints
        needed = None
        best = None
        best_key = None
        for c in candidates:
            c_fps = c.image.fingerprints
            if c_fps == fps:  # same_configuration <=> equal fingerprints
                continue
            pair = (fps, c_fps)
            covers = _COVERS.get(pair)
            if covers is None:
                if needed is None:
                    needed = frozenset(image.packages)
                covers = _COVERS[pair] = (
                    needed <= frozenset(c.image.packages)
                )
            if not covers:
                continue
            key = (c.memory_mb, c.container_id)
            if best_key is None or key < best_key:
                best_key = key
                best = c
        if best is not None:
            return best, int(match_level(image, best.image)), True, ()
        exact = pool.best_exact(image)
        if exact is None:
            return _COLD
        return exact, 3, False, ()

    def _score_walways(
        self, fn, spec, image
    ) -> Tuple[Optional[Container], int, bool, tuple]:
        """AlwaysAdoptScheduler: cheapest same-OS delta cost, adopted only
        when it beats the cold-start latency.

        The sequential scan visits idle containers LRU-first with a strict
        ``<``, so the first minimizer in LRU order wins; sorting the L1
        bucket by the MRU key reproduces that order exactly.
        """
        candidates = self.pool.match_candidates(image, MatchLevel.L1)
        if not candidates:
            return _COLD
        if len(candidates) > 1:
            candidates.sort(key=_mru_key)
        costs = self.walways_costs
        cost_model = self.table.cost_model
        finit = spec.function_init_s
        best = None
        best_cost = math.inf
        for c in candidates:
            key = (fn, c.image.fingerprints)
            cost = costs.get(key)
            if cost is None:
                cost = costs[key] = cost_model.delta_breakdown(
                    image, c.image, finit
                ).total_s
            if cost < best_cost:
                best_cost = cost
                best = c
        if best is not None and best_cost < self.table.latency[fn][0]:
            return best, int(match_level(image, best.image)), False, ()
        return _COLD

    def _score_offline(
        self, fn, spec, image
    ) -> Tuple[Optional[Container], int, bool, tuple]:
        """OfflineQScheduler: masked arg-max over the function's Q-row
        (MRU container at exactly the chosen level), greedy fallback when
        untrained / unseen / fully masked.

        The availability mask and the first-occurrence arg-max replicate
        ``masked_argmax`` over ``match_depth_counts``; Q-rows are cached
        per function with NaN cells pre-resolved to ``None``.
        """
        pool = self.pool
        policy = self.offline_policy
        if policy is not None:
            row = self.offline_rows.get(fn, _MISSING)
            if row is _MISSING:
                qvals = policy.action_values(spec.name)
                row = (
                    None if qvals is None else tuple(
                        None if math.isnan(v) else float(v) for v in qvals
                    )
                )
                self.offline_rows[fn] = row
            if row is not None:
                counts = pool.match_depth_counts(image)
                best_a = -1
                best_v = -math.inf
                for a in range(4):
                    v = row[a]
                    if v is None:
                        continue
                    if a and not counts[a]:
                        continue
                    if v > best_v:  # strict > keeps the first (argmax) max
                        best_v = v
                        best_a = a
                if best_a == 0:
                    return _COLD
                if best_a > 0:
                    container = pool.best_at_level(image, _MATCH_MEMBERS[best_a])
                    if container is not None:
                        return container, best_a, False, ()
                # Empty mask (or index drift) degrades to the greedy
                # fallback, exactly as the scheduler's safety branch does.
        container, level = pool.best_match(image)
        if container is None:
            return _COLD
        return container, int(level), False, ()

    def _score_scripted(
        self, t: float, i: int, spec
    ) -> Tuple[Optional[Container], int, bool, tuple]:
        """Drive the registry scheduler's real ``decide`` for this arrival.

        The context mirrors ``ClusterSimulator._context_for``: the pending
        invocation rebuilt from the columns, idle containers sorted by
        ``(last_used_at, container_id)`` (the PoolSet merge order), the
        lane's own pool behind the index-backed helpers.  ``worker_loads``
        / ``queue_depths`` stay empty -- no registry scheduler reads them
        (they are only populated under admission control, which lanes do
        not support).
        """
        table = self.table
        pool = self.pool
        invocation = Invocation(
            invocation_id=int(table.ids[i]),
            spec=spec,
            arrival_time=float(table.times[i]),
            execution_time_s=float(table.exec_s[i]),
        )
        ctx = SchedulingContext(
            now=t,
            invocation=invocation,
            idle_containers=tuple(sorted(pool.lru_order(), key=_mru_key)),
            cost_model=table.cost_model,
            pool_capacity_mb=pool.capacity_mb,
            pool_used_mb=pool.used_mb,
            pool=pool,
        )
        decision = self.scheduler.decide(ctx)
        if decision.container_id is None:
            if decision.actions:
                return None, 0, False, decision.actions
            return _COLD
        container = pool.get(decision.container_id)
        match = int(match_level(spec.image, container.image))
        return container, match, decision.preserve_image, decision.actions

    # -- application ---------------------------------------------------------
    def apply(
        self,
        t: float,
        container: Optional[Container],
        match: int,
        preserve: bool = False,
        actions: tuple = (),
    ) -> None:
        """Execute the scored decision for the pending arrival."""
        table = self.table
        i = self.arr_i
        fn = table.fn_ix[i]
        spec = table.specs[fn]
        if container is None:
            container = Container(
                container_id=self.next_cid, image=spec.image,
                created_at=t, last_used_at=0.0,
            )
            self.next_cid += 1
            self.live_mb += spec.image.memory_mb
            self.cold += 1
        else:
            cid = container.container_id
            self.pool.remove(cid)
            container.state = ContainerState.STARTING
            if self.prewarmed and cid in self.prewarmed:
                self.prewarmed.discard(cid)
                self.prewarm_reuses += 1
            if self.lent:
                target = self.lent.pop(cid, None)
                if target is not None and target == spec.name:
                    self.lend_reuses += 1
            if not preserve:
                # Repack: the image swap adjusts live memory exactly as
                # ``ContainerLifecycle.repack`` does (new minus old);
                # zygote-style preserve keeps the superset image in place.
                old_mb = container.image.memory_mb
                container.image = spec.image
                self.live_mb += spec.image.memory_mb - old_mb
        if self.live_mb > self.peak_live_mb:
            self.peak_live_mb = self.live_mb
        latency = table.latency[fn][match]
        if self.bounded:
            self.lat_n += 1
            self.lat_total += latency
            self.lat_sketch.insert(latency)
        else:
            self.latencies.append(latency)
        # begin_startup stamps the claim time and the serving function (the
        # latter feeds FaasCache's greedy-dual priorities).
        container.current_function = spec.name
        container.last_used_at = t
        heapq.heappush(
            self.heap,
            (t + latency, self.seq, _STARTUP_DONE, container,
             float(table.exec_s[i])),
        )
        self.seq += 1
        if self.on_start is not None:
            self.on_start(spec.name, latency, container.memory_mb, t)
        if actions:
            for action in actions:
                if isinstance(action, PrewarmRequest):
                    self._prewarm(action.image, action.function_name, t)
                else:
                    self._lend(
                        action.container_id, action.image,
                        action.function_name, t,
                    )
        self.arr_i = i + 1

    # -- proactive actions (pre-warm / lending) ------------------------------
    def _prewarm(self, image, function_name: str, now: float) -> None:
        """Replay a ``PrewarmRequest``: mirrors ``ContainerLifecycle.\
prewarm`` (idle creation, issue counter, pool entry via keep-alive)."""
        container = Container(
            container_id=self.next_cid, image=image,
            created_at=now, last_used_at=now,
        )
        self.next_cid += 1
        container.state = ContainerState.IDLE
        container.current_function = function_name
        self.live_mb += image.memory_mb
        self.prewarms_issued += 1
        self.prewarmed.add(container.container_id)
        if self.live_mb > self.peak_live_mb:
            self.peak_live_mb = self.live_mb
        self._keep_alive(container, now)

    def _lend(
        self, container_id: int, target_image, function_name: str, now: float
    ) -> None:
        """Replay a ``LendRequest``: mirrors ``ContainerLifecycle.lend``
        (validation, in-place repack toward the target, idle-clock reset)."""
        pool = self.pool
        container = pool.get(container_id)
        if container is None:
            return
        if match_level(target_image, container.image) is MatchLevel.NO_MATCH:
            return
        headroom = pool.capacity_mb - pool.used_mb + container.memory_mb
        if target_image.memory_mb > headroom:
            return
        pool.remove(container_id)
        old_mb = container.image.memory_mb
        container.image = target_image
        self.live_mb += target_image.memory_mb - old_mb
        container.current_function = function_name
        container.last_used_at = now
        pool.add(container)
        self.lends_issued += 1
        self.lent[container_id] = function_name
        if self.live_mb > self.peak_live_mb:
            self.peak_live_mb = self.live_mb

    # -- results -------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """The cell summary, key-for-key and bit-for-bit equal to
        :meth:`repro.cluster.telemetry.Telemetry.summary` (or
        :class:`~repro.cluster.telemetry.BoundedTelemetry`'s in bounded
        mode) of the equivalent sequential run: same accumulation order,
        same numpy percentile calls / sketch estimates, warm-pool peak read
        off the pool's own tracking, pre-warm / lending blocks appended
        under the same non-zero gates."""
        if self.bounded:
            n = self.lat_n
            base = {
                "invocations": float(n),
                "total_startup_s": self.lat_total,
                "mean_startup_s": self.lat_total / n if n else 0.0,
                "p50_startup_s": self.lat_sketch.percentile(50),
                "p95_startup_s": self.lat_sketch.percentile(95),
                "cold_starts": float(self.cold),
                "warm_starts": float(n - self.cold),
                "evictions": float(self.evictions),
                "keep_alive_rejections": float(self.rejections),
                "ttl_expirations": float(self.ttl_expirations),
                "peak_warm_memory_mb": self.pool.peak_used_mb,
                "peak_live_memory_mb": self.peak_live_mb,
                "container_crashes": 0.0,
                "stragglers": 0.0,
            }
        else:
            latencies = self.latencies
            n = len(latencies)
            total = float(sum(latencies))
            lat = np.array(latencies, dtype=np.float64)
            base = {
                "invocations": float(n),
                "total_startup_s": total,
                "mean_startup_s": total / n if n else 0.0,
                "p50_startup_s": float(np.median(lat)) if n else 0.0,
                "p95_startup_s": float(np.percentile(lat, 95)) if n else 0.0,
                "cold_starts": float(self.cold),
                "warm_starts": float(n - self.cold),
                "evictions": float(self.evictions),
                "keep_alive_rejections": float(self.rejections),
                "ttl_expirations": float(self.ttl_expirations),
                "peak_warm_memory_mb": self.pool.peak_used_mb,
                "peak_live_memory_mb": self.peak_live_mb,
                "container_crashes": 0.0,
                "stragglers": 0.0,
            }
        if self.prewarms_issued:
            base["prewarms_issued"] = float(self.prewarms_issued)
            base["prewarm_reuses"] = float(self.prewarm_reuses)
            base["prewarm_wasted"] = float(self.prewarm_wasted)
        if self.lends_issued:
            base["lends_issued"] = float(self.lends_issued)
            base["lend_reuses"] = float(self.lend_reuses)
        return base


class LaneKernel:
    """Advance many independent simulation lanes per step.

    Parameters
    ----------
    specs:
        One :class:`LaneSpec` per lane.  Lanes replaying the same workload
        draw should share one :class:`ArrivalTable` instance (the grid
        runner's per-process table cache arranges this).
    """

    def __init__(self, specs: Sequence[LaneSpec]) -> None:
        for spec in specs:
            if spec.scheduler not in LANE_SCHEDULERS:
                raise KeyError(
                    f"scheduler {spec.scheduler!r} has no lane path; "
                    f"supported: {sorted(LANE_SCHEDULERS)}"
                )
            if spec.table is None:
                raise ValueError(
                    "LaneKernel lanes need a bound ArrivalTable; "
                    "use run_stream_lanes for chunked streaming replay"
                )
        self.lanes = [_Lane(spec) for spec in specs]

    def _score_batch(
        self, lanes: List[_Lane], times: np.ndarray
    ) -> List[Tuple[Optional[Container], int, bool, tuple]]:
        """Score one step's pending arrival across every active lane."""
        return [lane.score(float(t)) for lane, t in zip(lanes, times)]

    def run(self) -> List[LaneResult]:
        """Run every lane to completion; results in lane order.

        Lockstep stepping: step ``k`` drains each active lane to its
        ``k``-th arrival, batch-scores the pending decisions against the
        lanes' pool indexes, then applies them.  The arrival cursors and
        active mask live in numpy arrays; lanes finishing early drop out of
        the step without stalling the rest.
        """
        lanes = self.lanes
        n_arr = np.fromiter(
            (lane.table.n for lane in lanes), dtype=np.int64,
            count=len(lanes),
        )
        cursors = np.zeros(len(lanes), dtype=np.int64)
        active_ix = np.flatnonzero(cursors < n_arr)
        while active_ix.size:
            active = [lanes[i] for i in active_ix]
            # Batched arrival ingestion: this step's arrival timestamps,
            # gathered straight from the shared columnar tables.
            times = np.fromiter(
                (lane.table.times[lane.arr_i] for lane in active),
                dtype=np.float64, count=len(active),
            )
            for lane, t in zip(active, times):
                lane.drain_until(t)
            decisions = self._score_batch(active, times)
            for lane, t, (container, match, preserve, actions) in zip(
                active, times, decisions
            ):
                lane.apply(float(t), container, match, preserve, actions)
            cursors[active_ix] += 1
            active_ix = active_ix[cursors[active_ix] < n_arr[active_ix]]
        for lane in lanes:
            lane.drain_all()
        return [
            LaneResult(method=lane.method, summary=lane.summary())
            for lane in lanes
        ]


def run_stream_lanes(
    cells: Sequence[Tuple[str, float]],
    stream: Iterable[Invocation],
    chunk_size: int = STREAM_CHUNK_SIZE,
    cost_model: Optional[StartupCostModel] = None,
) -> List[LaneResult]:
    """Replay one arrival stream through many bounded lanes at once.

    ``cells`` is one ``(scheduler key, capacity_mb)`` pair per lane; all
    lanes consume the same stream, lowered once into
    :meth:`ArrivalTable.from_stream` chunks and re-bound to every lane as
    each chunk arrives, so memory stays O(chunk + #functions + in-flight
    containers) regardless of stream length.  Lanes run in
    ``BoundedTelemetry``-equivalent folding; the result summaries are
    byte-identical to ``ClusterSimulator.run_stream`` with
    ``SimulationConfig(bounded_telemetry=True)`` per cell (the
    ``streaming_vs_materialized`` oracle pins this).
    """
    for key, _capacity in cells:
        if key not in LANE_SCHEDULERS:
            raise KeyError(
                f"scheduler {key!r} has no lane path; "
                f"supported: {sorted(LANE_SCHEDULERS)}"
            )
    lanes = [
        _Lane(LaneSpec(
            scheduler=key, table=None, capacity_mb=capacity, bounded=True,
        ))
        for key, capacity in cells
    ]
    for chunk in ArrivalTable.from_stream(
        stream, chunk_size=chunk_size, cost_model=cost_model
    ):
        times = chunk.times
        for lane in lanes:
            lane.table = chunk
            lane.arr_i = 0
        for i in range(chunk.n):
            t = float(times[i])
            # Lanes are independent, so per-arrival interleaving is
            # equivalent to the kernel's lockstep stepping.
            for lane in lanes:
                lane.drain_until(t)
                container, match, preserve, actions = lane.score(t)
                lane.apply(t, container, match, preserve, actions)
    for lane in lanes:
        lane.drain_all()
    return [
        LaneResult(method=lane.method, summary=lane.summary())
        for lane in lanes
    ]
