"""Multi-lane simulation kernel: many grid cells per process, lean and fast.

A grid sweep replays thousands of *independent* simulations -- one per
``(scheduler, workload, seed, capacity)`` cell.  The sequential path runs
each cell through the full :class:`~repro.cluster.simulator.ClusterSimulator`
stack: per-event :class:`~repro.cluster.events.Event` objects, the layered
lifecycle (cleaner, volumes, placement), a 16-column telemetry append per
invocation, and a :class:`~repro.schedulers.base.SchedulingContext` whose
construction sorts the whole pool per arrival.  None of that machinery is
needed to produce the *summary* a grid cell actually carries.

This module advances many **lanes** (one lane = one cell) per step through a
struct-of-arrays kernel:

* **Batched arrival ingestion** -- each workload draw is lowered once into an
  :class:`ArrivalTable`: numpy columns (arrival time, execution time,
  function index) plus a per-``(function, match level)`` startup-latency
  table computed through the exact same
  :meth:`~repro.containers.costmodel.StartupCostModel.breakdown` call the
  sequential driver makes per arrival.  The hot loop never touches an
  :class:`~repro.workloads.workload.Invocation` object.  Tables are shared
  by every lane replaying the same draw.
* **Lockstep stepping** -- :meth:`LaneKernel.run` advances every active lane
  to its ``k``-th arrival per step: due completions drain, TTL sweeps run,
  then the step's decisions are scored as a batch
  (:meth:`LaneKernel._score_batch`) against each lane's warm-pool match
  index before being applied.  The active-lane bookkeeping (arrival
  cursors, remaining counts) is vectorized numpy.
* **Shared pool semantics** -- each lane reuses the *real*
  :class:`~repro.cluster.pool.WarmPool` and
  :class:`~repro.cluster.eviction.EvictionPolicy` objects, so eviction
  ordering, TTL expiry, capacity accounting and peak tracking are identical
  to the sequential simulator by construction, not by reimplementation.

**Byte-identical contract.**  For the supported schedulers
(:data:`LANE_SCHEDULERS`) and the default grid configuration (no worker
concurrency limit, single pool shard, faults off), a lane's
:meth:`_Lane.summary` is bit-equal to
``ClusterSimulator.run(...).telemetry.summary()`` for the same cell: same
event order (``(time, priority, seq)`` with arrivals before same-time
completions), same decisions (the fast paths delegate to the same pool-index
lookups the schedulers use), same floating-point accumulation order for
latency totals and memory peaks.  The ``lanes_vs_sequential`` differential
oracle and the hypothesis suite in ``tests/test_lanes.py`` enforce this.

Wired into :func:`repro.experiments.parallel.run_grid` via its ``lanes``
argument and the CLI's ``repro simulate --lanes`` /
``runall --lanes`` flags.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.eviction import (
    EvictionPolicy,
    LRUEviction,
    RejectNewcomerEviction,
)
from repro.cluster.pool import WarmPool
from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel
from repro.workloads.workload import Workload

__all__ = [
    "ArrivalTable",
    "LANE_SCHEDULERS",
    "LaneKernel",
    "LaneResult",
    "LaneSpec",
    "lane_supported_scheduler",
]

#: Decision fast-path codes (one per supported scheduler family).
_DECIDE_COLD = 0   # always cold-start (ColdOnly)
_DECIDE_EXACT = 1  # MRU exact (L3) match or cold (LRU, KeepAlive)
_DECIDE_BEST = 2   # deepest match at any level or cold (Greedy-Match)

#: Schedulers the lane kernel can replay: registry key ->
#: ``(display name, decision code, eviction-policy factory)``.  The decision
#: fast paths are provably identical to the schedulers' ``decide``: LRU and
#: KeepAlive take the most-recently-used exact match
#: (``SchedulingContext.exact_matches()[0]``), Greedy-Match takes
#: ``pool.best_match`` when reusable, ColdOnly always cold-starts -- all of
#: which resolve through the same warm-pool match index the kernel queries
#: directly.  Everything else (FaasCache's stateful priorities, lookahead,
#: MLCR) falls back to the sequential driver.
LANE_SCHEDULERS: Dict[str, Tuple[str, int, Callable[[], EvictionPolicy]]] = {
    "lru": ("LRU", _DECIDE_EXACT, LRUEviction),
    "keepalive": (
        "KeepAlive",
        _DECIDE_EXACT,
        lambda: RejectNewcomerEviction(ttl_s=600.0),
    ),
    "greedy": ("Greedy-Match", _DECIDE_BEST, LRUEviction),
    "coldonly": ("ColdOnly", _DECIDE_COLD, LRUEviction),
}

#: Completion-event kind codes inside a lane's heap.
_STARTUP_DONE = 0
_EXECUTION_DONE = 1


def lane_supported_scheduler(key: str) -> bool:
    """Whether scheduler registry ``key`` has a lane fast path."""
    return key in LANE_SCHEDULERS


class ArrivalTable:
    """Columnar (struct-of-arrays) lowering of one workload draw.

    Built once per ``(workload, cost model)`` and shared read-only by every
    lane that replays the draw.  Columns are parallel arrays over the
    workload's arrival order (which the workload constructor already sorts
    by ``(arrival_time, invocation_id)`` -- the same order the event queue
    pops same-time arrivals in):

    ``times`` / ``exec_s``
        Arrival timestamps and execution durations (float64).
    ``fn_ix``
        Index into :attr:`specs` for each arrival (int32).
    ``latency``
        ``latency[fn][int(match)]`` -- the startup latency of starting
        ``specs[fn]`` at a given Table-I match level, precomputed through
        the same cost-model :meth:`~repro.containers.costmodel.\
StartupCostModel.breakdown` the sequential driver evaluates per arrival
        (breakdowns are pure and order-independent, so the floats are
        bit-identical).
    """

    def __init__(
        self, workload: Workload, cost_model: Optional[StartupCostModel] = None
    ) -> None:
        cost_model = cost_model or StartupCostModel()
        invocations = list(workload)
        self.name = workload.name
        self.n = len(invocations)
        self.times = np.fromiter(
            (inv.arrival_time for inv in invocations),
            dtype=np.float64, count=self.n,
        )
        self.exec_s = np.fromiter(
            (inv.execution_time_s for inv in invocations),
            dtype=np.float64, count=self.n,
        )
        specs: List = []
        index_of: Dict[int, int] = {}
        fn_ix = np.empty(self.n, dtype=np.int32)
        for i, inv in enumerate(invocations):
            spec = inv.spec
            key = id(spec)
            ix = index_of.get(key)
            if ix is None:
                ix = index_of[key] = len(specs)
                specs.append(spec)
            fn_ix[i] = ix
        self.fn_ix = fn_ix
        self.specs = specs
        self.latency: List[List[float]] = [
            [
                cost_model.breakdown(
                    spec.image, level, spec.function_init_s
                ).total_s
                for level in MatchLevel
            ]
            for spec in specs
        ]


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a kernel run: a scheduler replaying a workload draw.

    ``scheduler`` must be a :data:`LANE_SCHEDULERS` key; ``table`` is the
    (shareable) columnar lowering of the lane's workload and
    ``capacity_mb`` the warm-pool capacity of the cell.
    """

    scheduler: str
    table: ArrivalTable
    capacity_mb: float


@dataclass(frozen=True)
class LaneResult:
    """Outcome of one lane: the cell's method name and telemetry summary."""

    method: str
    summary: Dict[str, float]


class _Lane:
    """Mutable per-lane simulation state (pool, heap, counters).

    Only the fields the summary depends on are simulated; containers are
    real :class:`~repro.containers.container.Container` objects (the pool
    and eviction policies read their id, image, recency and idle state) but
    the checked state-machine transitions, cleaner, volumes and placement
    bookkeeping of the sequential lifecycle -- none of which influence a
    summary under the supported configuration -- are skipped.
    """

    __slots__ = (
        "table", "method", "decide_code", "eviction", "ttl_s", "pool",
        "next_cid", "live_mb", "peak_live_mb", "cold", "evictions",
        "rejections", "ttl_expirations", "latencies", "heap", "seq", "arr_i",
    )

    def __init__(self, spec: LaneSpec) -> None:
        method, decide_code, eviction_factory = LANE_SCHEDULERS[spec.scheduler]
        self.table = spec.table
        self.method = method
        self.decide_code = decide_code
        self.eviction = eviction_factory()
        self.ttl_s = self.eviction.ttl_s
        self.pool = WarmPool(spec.capacity_mb)
        self.next_cid = 1           # mirrors lifecycle's itertools.count(1)
        self.live_mb = 0.0
        self.peak_live_mb = 0.0
        self.cold = 0
        self.evictions = 0
        self.rejections = 0
        self.ttl_expirations = 0
        self.latencies = array("d")
        # Completion heap: (time, seq, kind, container, exec_s).  All
        # completions share event priority 1, so (time, seq) alone orders
        # them exactly as the sequential queue does; seq starts past the
        # arrival count purely to mirror the batch loader's numbering.
        self.heap: List[Tuple[float, int, int, Container, float]] = []
        self.seq = self.table.n
        self.arr_i = 0

    # -- event handling ------------------------------------------------------
    def _sweep(self, now: float) -> None:
        """Expire pooled containers idle past the TTL (per-pop sweep)."""
        expired = self.pool.expire_older_than(now - self.ttl_s)
        if expired:
            self.ttl_expirations += len(expired)
            live = self.live_mb
            for container in expired:
                live = max(0.0, live - container.image.memory_mb)
            self.live_mb = live

    def _keep_alive(self, container: Container, now: float) -> None:
        """Pool a finished container through the eviction policy."""
        victims = self.eviction.select_victims(self.pool, container, now)
        if victims is None:
            self.rejections += 1
            self.live_mb = max(
                0.0, self.live_mb - container.image.memory_mb
            )
            return
        if victims:
            self.evictions += len(victims)
            pool_remove = self.pool.remove
            for victim in victims:
                pool_remove(victim.container_id)
                self.live_mb = max(
                    0.0, self.live_mb - victim.image.memory_mb
                )
        self.pool.add(container)

    def drain_until(self, t: float) -> None:
        """Handle every completion strictly before ``t`` (the next arrival).

        Same-time completions yield to the arrival (arrivals carry event
        priority 0); each pop runs the TTL sweep at its own time before
        handling, mirroring ``EventLoop.pop_next``.
        """
        heap = self.heap
        ttl_active = self.ttl_s is not None
        while heap and heap[0][0] < t:
            time, _seq, kind, container, exec_s = heapq.heappop(heap)
            if ttl_active and len(self.pool):
                self._sweep(time)
            if kind == _STARTUP_DONE:
                heapq.heappush(
                    heap,
                    (time + exec_s, self.seq, _EXECUTION_DONE, container, 0.0),
                )
                self.seq += 1
            else:
                container.state = ContainerState.IDLE
                container.last_used_at = time
                self._keep_alive(container, time)

    def drain_all(self) -> None:
        """Run out every in-flight completion (the ``finish()`` drain)."""
        self.drain_until(float("inf"))

    # -- decision + application ---------------------------------------------
    def score(self, t: float) -> Tuple[Optional[Container], int]:
        """Decide the pending arrival: ``(warm container or None, match)``.

        Runs the per-pop TTL sweep at the arrival's time first (the
        sequential loop sweeps on the arrival pop before the scheduler
        sees the context), then resolves the decision through the pool's
        match index exactly as the scheduler's ``decide`` would.
        """
        if self.ttl_s is not None and len(self.pool):
            self._sweep(t)
        code = self.decide_code
        if code == _DECIDE_COLD:
            return None, 0
        image = self.table.specs[self.table.fn_ix[self.arr_i]].image
        if code == _DECIDE_EXACT:
            container = self.pool.best_exact(image)
            if container is None:
                return None, 0
            return container, int(MatchLevel.L3)
        container, level = self.pool.best_match(image)
        if container is None:
            return None, 0
        return container, int(level)

    def apply(
        self, t: float, container: Optional[Container], match: int
    ) -> None:
        """Execute the scored decision for the pending arrival."""
        table = self.table
        i = self.arr_i
        fn = table.fn_ix[i]
        spec = table.specs[fn]
        if container is None:
            container = Container(
                container_id=self.next_cid, image=spec.image,
                created_at=t, last_used_at=0.0,
            )
            self.next_cid += 1
            self.live_mb += spec.image.memory_mb
            self.cold += 1
        else:
            self.pool.remove(container.container_id)
            container.state = ContainerState.STARTING
            # Repack: the image swap adjusts live memory exactly as
            # ``ContainerLifecycle.repack`` does (new minus old).
            old_mb = container.image.memory_mb
            container.image = spec.image
            self.live_mb += spec.image.memory_mb - old_mb
        if self.live_mb > self.peak_live_mb:
            self.peak_live_mb = self.live_mb
        latency = table.latency[fn][match]
        self.latencies.append(latency)
        container.last_used_at = t   # begin_startup stamps the claim time
        heapq.heappush(
            self.heap,
            (t + latency, self.seq, _STARTUP_DONE, container,
             float(table.exec_s[i])),
        )
        self.seq += 1
        self.arr_i = i + 1

    # -- results -------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """The cell summary, key-for-key and bit-for-bit equal to
        :meth:`repro.cluster.telemetry.Telemetry.summary` of the equivalent
        sequential run (same accumulation order, same numpy percentile
        calls, warm-pool peak read off the pool's own tracking)."""
        latencies = self.latencies
        n = len(latencies)
        total = float(sum(latencies))
        lat = np.array(latencies, dtype=np.float64)
        return {
            "invocations": float(n),
            "total_startup_s": total,
            "mean_startup_s": total / n if n else 0.0,
            "p50_startup_s": float(np.median(lat)) if n else 0.0,
            "p95_startup_s": float(np.percentile(lat, 95)) if n else 0.0,
            "cold_starts": float(self.cold),
            "warm_starts": float(n - self.cold),
            "evictions": float(self.evictions),
            "keep_alive_rejections": float(self.rejections),
            "ttl_expirations": float(self.ttl_expirations),
            "peak_warm_memory_mb": self.pool.peak_used_mb,
            "peak_live_memory_mb": self.peak_live_mb,
            "container_crashes": 0.0,
            "stragglers": 0.0,
        }


class LaneKernel:
    """Advance many independent simulation lanes per step.

    Parameters
    ----------
    specs:
        One :class:`LaneSpec` per lane.  Lanes replaying the same workload
        draw should share one :class:`ArrivalTable` instance (the grid
        runner's per-process table cache arranges this).
    """

    def __init__(self, specs: Sequence[LaneSpec]) -> None:
        for spec in specs:
            if spec.scheduler not in LANE_SCHEDULERS:
                raise KeyError(
                    f"scheduler {spec.scheduler!r} has no lane fast path; "
                    f"supported: {sorted(LANE_SCHEDULERS)}"
                )
        self.lanes = [_Lane(spec) for spec in specs]

    def _score_batch(
        self, lanes: List[_Lane], times: np.ndarray
    ) -> List[Tuple[Optional[Container], int]]:
        """Score one step's pending arrival across every active lane."""
        return [lane.score(float(t)) for lane, t in zip(lanes, times)]

    def run(self) -> List[LaneResult]:
        """Run every lane to completion; results in lane order.

        Lockstep stepping: step ``k`` drains each active lane to its
        ``k``-th arrival, batch-scores the pending decisions against the
        lanes' pool indexes, then applies them.  The arrival cursors and
        active mask live in numpy arrays; lanes finishing early drop out of
        the step without stalling the rest.
        """
        lanes = self.lanes
        n_arr = np.fromiter(
            (lane.table.n for lane in lanes), dtype=np.int64,
            count=len(lanes),
        )
        cursors = np.zeros(len(lanes), dtype=np.int64)
        active_ix = np.flatnonzero(cursors < n_arr)
        while active_ix.size:
            active = [lanes[i] for i in active_ix]
            # Batched arrival ingestion: this step's arrival timestamps,
            # gathered straight from the shared columnar tables.
            times = np.fromiter(
                (lane.table.times[lane.arr_i] for lane in active),
                dtype=np.float64, count=len(active),
            )
            for lane, t in zip(active, times):
                lane.drain_until(t)
            decisions = self._score_batch(active, times)
            for lane, t, (container, match) in zip(active, times, decisions):
                lane.apply(float(t), container, match)
            cursors[active_ix] += 1
            active_ix = active_ix[cursors[active_ix] < n_arr[active_ix]]
        for lane in lanes:
            lane.drain_all()
        return [
            LaneResult(method=lane.method, summary=lane.summary())
            for lane in lanes
        ]
