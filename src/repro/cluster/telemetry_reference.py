"""The pre-columnar, row-oriented telemetry collector (reference only).

This is the list-of-objects implementation :class:`repro.cluster.telemetry.
Telemetry` replaced.  It is kept verbatim (minus the rename) as the
behavioural reference for two consumers:

* the hypothesis parity suite (``tests/test_telemetry_parity.py``) drives
  both implementations with identical random event streams and asserts
  byte-identical summaries, reports and golden-trace serializations;
* ``benchmarks/bench_telemetry_ingest.py`` measures the columnar ingest
  speedup against this implementation (the acceptance floor is 2x).

Nothing in the production pipeline imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.telemetry import InvocationRecord, TraceEvent
from repro.containers.costmodel import StartupBreakdown
from repro.containers.matching import MatchLevel


@dataclass
class LegacyTelemetry:
    """Row-oriented per-run metric collector (one object per event)."""

    records: List[InvocationRecord] = field(default_factory=list)
    evictions: int = 0
    keep_alive_rejections: int = 0
    ttl_expirations: int = 0
    container_crashes: int = 0
    stragglers: int = 0
    memory_timeline: List[Tuple[float, float]] = field(default_factory=list)
    peak_warm_memory_mb: float = 0.0
    peak_live_memory_mb: float = 0.0
    trace: List[TraceEvent] = field(default_factory=list)
    trace_enabled: bool = False
    queueing_enabled: bool = False
    queue_delays: List[float] = field(default_factory=list)
    max_queue_depth: int = 0
    worker_busy_s: Dict[int, float] = field(default_factory=dict)
    duration_s: float = 0.0
    worker_slots: int = 1

    # -- recording ----------------------------------------------------------
    def record_invocation(self, record: InvocationRecord) -> None:
        """Append one per-invocation record."""
        self.records.append(record)

    def record_invocation_values(self, *values) -> None:
        """Columnar-compatible ingest entry point: builds the row object.

        Mirrors :meth:`repro.cluster.telemetry.Telemetry.
        record_invocation_values` so the parity tests and the ingest
        benchmark can drive both implementations through one call shape;
        the legacy cost -- constructing an :class:`InvocationRecord` (and
        its breakdown) per event -- is exactly what the columnar path
        eliminates.
        """
        (invocation_id, function_name, arrival_time, container_id,
         cold_start, match, startup_latency_s, create_s, pull_s, install_s,
         runtime_init_s, function_init_s, clean_s, execution_time_s,
         *rest) = values
        queue_delay_s = rest[0] if rest else 0.0
        worker_id = rest[1] if len(rest) > 1 else 0
        self.records.append(InvocationRecord(
            invocation_id=invocation_id,
            function_name=function_name,
            arrival_time=arrival_time,
            container_id=container_id,
            cold_start=bool(cold_start),
            match=MatchLevel(match),
            startup_latency_s=startup_latency_s,
            breakdown=StartupBreakdown(
                create_s=create_s, pull_s=pull_s, install_s=install_s,
                runtime_init_s=runtime_init_s, function_init_s=function_init_s,
                clean_s=clean_s,
            ),
            execution_time_s=execution_time_s,
            queue_delay_s=queue_delay_s,
            worker_id=worker_id,
        ))

    def record_eviction(self, n: int = 1) -> None:
        """Count eviction(s) of warm containers."""
        self.evictions += n

    def record_rejection(self) -> None:
        """Count one rejected keep-warm request."""
        self.keep_alive_rejections += 1

    def record_ttl_expiration(self, n: int = 1) -> None:
        """Count TTL expiration(s) of idle containers."""
        self.ttl_expirations += n

    def record_event(
        self,
        time: float,
        kind: str,
        container_id: Optional[int] = None,
        function: Optional[str] = None,
        detail: str = "",
    ) -> None:
        """Append a structured trace event (no-op unless tracing is on)."""
        if not self.trace_enabled:
            return
        self.trace.append(TraceEvent(time, kind, container_id,
                                     function, detail))

    def record_crash(self) -> None:
        """Count one injected container crash."""
        self.container_crashes += 1

    def record_queueing(self, delay_s: float) -> None:
        """Record one startup's queueing delay (0 when it started at once)."""
        self.queue_delays.append(delay_s)

    def record_queue_depth(self, depth: int) -> None:
        """Track the deepest per-worker startup queue observed."""
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def record_worker_busy(self, worker_id: int, seconds: float) -> None:
        """Accumulate busy (startup + execution) seconds for one worker."""
        self.worker_busy_s[worker_id] = (
            self.worker_busy_s.get(worker_id, 0.0) + seconds
        )

    def record_straggler(self) -> None:
        """Count one injected pull straggler."""
        self.stragglers += 1

    def sample_memory(self, now: float, used_mb: float) -> None:
        """Record a warm-pool memory sample and update the peak."""
        self.memory_timeline.append((now, used_mb))
        self.peak_warm_memory_mb = max(self.peak_warm_memory_mb, used_mb)

    def sample_live_memory(self, live_mb: float) -> None:
        """Update the peak over all live containers' memory."""
        self.peak_live_memory_mb = max(self.peak_live_memory_mb, live_mb)

    # -- aggregates ---------------------------------------------------------
    @property
    def n_invocations(self) -> int:
        return len(self.records)

    @property
    def total_startup_latency_s(self) -> float:
        return float(sum(r.startup_latency_s for r in self.records))

    @property
    def mean_startup_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return self.total_startup_latency_s / len(self.records)

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.records if r.cold_start)

    @property
    def warm_starts(self) -> int:
        return self.n_invocations - self.cold_starts

    def latencies(self) -> np.ndarray:
        """Per-invocation startup latencies in arrival order."""
        return np.array([r.startup_latency_s for r in self.records],
                        dtype=np.float64)

    def cumulative_latency(self) -> np.ndarray:
        """Cumulative startup latency vs arrival index (Fig. 9 series)."""
        return np.cumsum(self.latencies())

    def cumulative_cold_starts(self) -> np.ndarray:
        """Cumulative cold-start counts vs arrival index."""
        flags = np.array([r.cold_start for r in self.records], dtype=np.int64)
        return np.cumsum(flags)

    def match_histogram(self) -> Dict[MatchLevel, int]:
        """How many starts happened at each match level."""
        hist: Dict[MatchLevel, int] = {lvl: 0 for lvl in MatchLevel}
        for r in self.records:
            hist[r.match] += 1
        return hist

    @property
    def total_queueing_s(self) -> float:
        """Total time startups spent queued for worker slots."""
        return float(sum(self.queue_delays))

    @property
    def queued_starts(self) -> int:
        """How many startups had to wait for a worker slot."""
        return sum(1 for d in self.queue_delays if d > 0)

    def worker_utilization(self) -> Dict[int, float]:
        """Busy fraction per worker over the run's duration."""
        if self.duration_s <= 0:
            return {w: 0.0 for w in self.worker_busy_s}
        denom = self.duration_s * max(1, self.worker_slots)
        return {
            w: busy / denom
            for w, busy in sorted(self.worker_busy_s.items())
        }

    def queueing_summary(self) -> Dict[str, float]:
        """Scalar queueing/utilization block of :meth:`summary`."""
        delays = np.array(self.queue_delays, dtype=np.float64)
        utilization = list(self.worker_utilization().values())
        return {
            "total_queueing_s": float(delays.sum()) if delays.size else 0.0,
            "mean_queueing_s": float(delays.mean()) if delays.size else 0.0,
            "p95_queueing_s": (
                float(np.percentile(delays, 95)) if delays.size else 0.0
            ),
            "queued_starts": float(self.queued_starts),
            "max_queue_depth": float(self.max_queue_depth),
            "mean_worker_utilization": (
                float(np.mean(utilization)) if utilization else 0.0
            ),
            "max_worker_utilization": (
                float(np.max(utilization)) if utilization else 0.0
            ),
        }

    def per_function_mean_latency(self) -> Dict[str, float]:
        """Mean startup latency per function name."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for r in self.records:
            sums[r.function_name] = (
                sums.get(r.function_name, 0.0) + r.startup_latency_s
            )
            counts[r.function_name] = counts.get(r.function_name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by experiment reports."""
        lat = self.latencies()
        base = {
            "invocations": float(self.n_invocations),
            "total_startup_s": self.total_startup_latency_s,
            "mean_startup_s": self.mean_startup_latency_s,
            "p50_startup_s": float(np.median(lat)) if lat.size else 0.0,
            "p95_startup_s": float(np.percentile(lat, 95)) if lat.size else 0.0,
            "cold_starts": float(self.cold_starts),
            "warm_starts": float(self.warm_starts),
            "evictions": float(self.evictions),
            "keep_alive_rejections": float(self.keep_alive_rejections),
            "ttl_expirations": float(self.ttl_expirations),
            "peak_warm_memory_mb": self.peak_warm_memory_mb,
            "peak_live_memory_mb": self.peak_live_memory_mb,
            "container_crashes": float(self.container_crashes),
            "stragglers": float(self.stragglers),
        }
        if self.queueing_enabled:
            base.update(self.queueing_summary())
        return base
