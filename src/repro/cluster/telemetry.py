"""Telemetry: everything the evaluation section measures.

The paper's figures need, per run: total/average startup latency, number of
cold starts, cumulative latency trajectories (Fig. 9), peak warm-pool memory
and eviction counts (Fig. 10), plus per-invocation breakdowns (Fig. 1).

Storage is *columnar* (struct-of-arrays): every per-invocation field lives
in its own ``array('d')`` / ``array('q')`` column, with function names
interned into a string table.  Appending an event touches a handful of
primitive array slots instead of allocating a Python object per invocation,
and the aggregates (:meth:`Telemetry.summary`, percentiles, per-worker
utilization) compute directly over the columns in one pass.  The historical
row-oriented views -- :class:`InvocationRecord` and :class:`TraceEvent` --
are materialized lazily (and cached) by the :attr:`Telemetry.records` /
:attr:`Telemetry.trace` properties, so report rendering, golden-trace
record/replay and the verification monitors keep byte-identical output.

The pre-columnar list implementation survives as
:class:`repro.cluster.telemetry_reference.LegacyTelemetry`; the hypothesis
parity suite (``tests/test_telemetry_parity.py``) drives both with random
event streams and asserts identical summaries and trace bytes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.sketches import QuantileSketch
from repro.containers.costmodel import StartupBreakdown
from repro.containers.matching import MatchLevel

#: MatchLevel members indexed by their integer value (levels are contiguous
#: from 0), used to rebuild enum members from the ``match`` column without
#: paying the ``MatchLevel(int)`` constructor per row.
_MATCH_MEMBERS: Tuple[MatchLevel, ...] = tuple(MatchLevel)


@dataclass(frozen=True)
class InvocationRecord:
    """Per-invocation outcome.

    ``startup_latency_s`` includes any queueing delay the startup spent
    waiting for a worker concurrency slot; ``queue_delay_s`` records that
    component separately (0 when admission control is disabled).
    """

    invocation_id: int
    function_name: str
    arrival_time: float
    container_id: int
    cold_start: bool
    match: MatchLevel
    startup_latency_s: float
    breakdown: StartupBreakdown
    execution_time_s: float
    queue_delay_s: float = 0.0
    worker_id: int = 0

    @property
    def finish_time(self) -> float:
        return self.arrival_time + self.startup_latency_s + self.execution_time_s

    @property
    def service_latency_s(self) -> float:
        """Startup latency excluding time queued for a worker slot."""
        return self.startup_latency_s - self.queue_delay_s


@dataclass(frozen=True)
class TraceEvent:
    """One structured simulator event (emitted when tracing is enabled)."""

    time: float
    kind: str
    container_id: Optional[int] = None
    function: Optional[str] = None
    detail: str = ""

    def to_json(self) -> str:
        """Serialize as one JSON line."""
        import json

        return json.dumps({
            "t": round(self.time, 6),
            "kind": self.kind,
            "container": self.container_id,
            "function": self.function,
            "detail": self.detail,
        })


class InvocationColumns(NamedTuple):
    """Zero-copy view over the telemetry's per-invocation columns.

    Numeric fields are the live ``array`` columns (do not mutate);
    ``function_name`` is materialized as a list of interned name references.
    Consumers that only need scalar fields (golden-trace recording, columnar
    IPC packing) iterate these directly instead of building one
    :class:`InvocationRecord` object per row.
    """

    invocation_id: Sequence[int]
    function_name: Sequence[str]
    arrival_time: Sequence[float]
    container_id: Sequence[int]
    cold_start: Sequence[int]
    match: Sequence[int]
    startup_latency_s: Sequence[float]
    queue_delay_s: Sequence[float]
    worker_id: Sequence[int]
    execution_time_s: Sequence[float]


class Telemetry:
    """Mutable per-run metric collector (columnar storage).

    Constructor flags:

    ``trace_enabled``
        Record structured :class:`TraceEvent` rows (off by default; the
        disabled :meth:`record_event` path returns before any allocation).
    ``queueing_enabled``
        Set by the simulator when a worker concurrency limit is enforced;
        gates the queueing/utilization block of :meth:`summary` so runs
        without admission control keep their historical summary keys.
    ``worker_slots``
        Concurrency slots per worker (the simulator's
        ``worker_concurrency``); normalizes :meth:`worker_utilization` so a
        fully-busy worker reads 1.0 regardless of how many slots it runs.
    """

    def __init__(
        self,
        trace_enabled: bool = False,
        queueing_enabled: bool = False,
        worker_slots: int = 1,
    ) -> None:
        self.trace_enabled = trace_enabled
        self.queueing_enabled = queueing_enabled
        self.worker_slots = worker_slots
        # Scalar counters.
        self.evictions = 0
        self.keep_alive_rejections = 0
        self.ttl_expirations = 0
        self.container_crashes = 0
        self.stragglers = 0
        self.peak_warm_memory_mb = 0.0
        self.peak_live_memory_mb = 0.0
        self.max_queue_depth = 0
        self.worker_busy_s: Dict[int, float] = {}
        self.duration_s = 0.0
        # Distilled-policy audit counters (folded in from the scheduler by
        # the simulator after a run; see MLCRScheduler.attach_surrogate).
        self.surrogate_audits = 0
        self.surrogate_disagreements = 0
        # Proactive-action counters (pre-warm / container lending).
        self.prewarms_issued = 0
        self.prewarm_reuses = 0
        self.prewarm_wasted = 0
        self.lends_issued = 0
        self.lend_reuses = 0
        # Per-invocation columns (struct-of-arrays).
        self._inv_id = array("q")
        self._fn_ix = array("q")
        self._arrival = array("d")
        self._cid = array("q")
        self._cold = array("b")
        self._match = array("b")
        self._latency = array("d")
        self._queue_delay = array("d")
        self._worker = array("q")
        self._exec = array("d")
        self._bd_create = array("d")
        self._bd_pull = array("d")
        self._bd_install = array("d")
        self._bd_rinit = array("d")
        self._bd_finit = array("d")
        self._bd_clean = array("d")
        # Interned string table shared by function names and trace kinds.
        self._names: List[str] = []
        self._name_ix: Dict[str, int] = {}
        # Memory-timeline columns (deduped on ingest: interior points of a
        # constant-value run are collapsed, keeping first and last).
        self._mem_t = array("d")
        self._mem_mb = array("d")
        # Queueing-delay column.
        self._queue_delays = array("d")
        # Trace-event columns (-1 encodes None for container/function).
        self._tr_time = array("d")
        self._tr_kind = array("q")
        self._tr_cid = array("q")
        self._tr_fn = array("q")
        self._tr_detail: List[str] = []
        # Lazily materialized row views (invalidated by length mismatch).
        self._records_view: Optional[List[InvocationRecord]] = None
        self._trace_view: Optional[List[TraceEvent]] = None

    # -- interning -----------------------------------------------------------
    def _intern(self, name: str) -> int:
        """Index of ``name`` in the shared string table (inserting it)."""
        ix = self._name_ix.get(name)
        if ix is None:
            ix = self._name_ix[name] = len(self._names)
            self._names.append(name)
        return ix

    # -- recording ----------------------------------------------------------
    def record_invocation_values(
        self,
        invocation_id: int,
        function_name: str,
        arrival_time: float,
        container_id: int,
        cold_start: bool,
        match: int,
        startup_latency_s: float,
        create_s: float,
        pull_s: float,
        install_s: float,
        runtime_init_s: float,
        function_init_s: float,
        clean_s: float,
        execution_time_s: float,
        queue_delay_s: float = 0.0,
        worker_id: int = 0,
    ) -> None:
        """Append one invocation directly into the columns (the fast path).

        Hot callers (the simulator's batch loop) use this to skip building
        an :class:`InvocationRecord` per event; the row view is available
        afterwards through :attr:`records`.
        """
        self._inv_id.append(invocation_id)
        self._fn_ix.append(self._intern(function_name))
        self._arrival.append(arrival_time)
        self._cid.append(container_id)
        self._cold.append(cold_start)
        self._match.append(match)
        self._latency.append(startup_latency_s)
        self._queue_delay.append(queue_delay_s)
        self._worker.append(worker_id)
        self._exec.append(execution_time_s)
        self._bd_create.append(create_s)
        self._bd_pull.append(pull_s)
        self._bd_install.append(install_s)
        self._bd_rinit.append(runtime_init_s)
        self._bd_finit.append(function_init_s)
        self._bd_clean.append(clean_s)

    def record_invocation(self, record: InvocationRecord) -> None:
        """Append one per-invocation record (row-oriented compatibility API)."""
        b = record.breakdown
        self.record_invocation_values(
            record.invocation_id,
            record.function_name,
            record.arrival_time,
            record.container_id,
            record.cold_start,
            int(record.match),
            record.startup_latency_s,
            b.create_s,
            b.pull_s,
            b.install_s,
            b.runtime_init_s,
            b.function_init_s,
            b.clean_s,
            record.execution_time_s,
            record.queue_delay_s,
            record.worker_id,
        )

    def record_eviction(self, n: int = 1) -> None:
        """Count eviction(s) of warm containers."""
        self.evictions += n

    def record_rejection(self) -> None:
        """Count one rejected keep-warm request."""
        self.keep_alive_rejections += 1

    def record_ttl_expiration(self, n: int = 1) -> None:
        """Count TTL expiration(s) of idle containers."""
        self.ttl_expirations += n

    def record_surrogate_audit(self, audits: int, disagreements: int) -> None:
        """Fold in a run's distilled-policy audit totals.

        ``audits`` decisions were double-checked against the full network;
        ``disagreements`` of them differed (the surrogate's choice still
        served).  Non-zero audits unlock the surrogate block of
        :meth:`summary`, making distillation drift visible in reports.
        """
        self.surrogate_audits += audits
        self.surrogate_disagreements += disagreements

    def record_prewarm_issue(self) -> None:
        """Count one proactive pre-warm (a container created ahead of any
        arrival)."""
        self.prewarms_issued += 1

    def record_prewarm_reuse(self) -> None:
        """Count one pre-warmed container claimed by a real invocation."""
        self.prewarm_reuses += 1

    def record_prewarm_waste(self) -> None:
        """Count one pre-warmed container destroyed before any claim."""
        self.prewarm_wasted += 1

    def record_lend(self) -> None:
        """Count one idle container lent (re-specialized in place)."""
        self.lends_issued += 1

    def record_lend_reuse(self) -> None:
        """Count one lent container claimed by its target function."""
        self.lend_reuses += 1

    def record_event(
        self,
        time: float,
        kind: str,
        container_id: Optional[int] = None,
        function: Optional[str] = None,
        detail: str = "",
    ) -> None:
        """Append a structured trace event (no-op unless tracing is on).

        The disabled path returns before any allocation.  Hot callers
        (e.g. the simulator's per-invocation events) additionally check
        :attr:`trace_enabled` *before* formatting ``detail`` strings, so a
        non-traced run never pays for event formatting at all.
        """
        if not self.trace_enabled:
            return
        self._tr_time.append(time)
        self._tr_kind.append(self._intern(kind))
        self._tr_cid.append(-1 if container_id is None else container_id)
        self._tr_fn.append(-1 if function is None else self._intern(function))
        self._tr_detail.append(detail)

    def trace_to_jsonl(self, path) -> "object":
        """Write the trace as JSON lines; returns the path."""
        from pathlib import Path

        path = Path(path)
        path.write_text("\n".join(e.to_json() for e in self.trace) + "\n")
        return path

    def record_crash(self) -> None:
        """Count one injected container crash."""
        self.container_crashes += 1

    def record_queueing(self, delay_s: float) -> None:
        """Record one startup's queueing delay (0 when it started at once)."""
        self._queue_delays.append(delay_s)

    def record_queue_depth(self, depth: int) -> None:
        """Track the deepest per-worker startup queue observed."""
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def record_worker_busy(self, worker_id: int, seconds: float) -> None:
        """Accumulate busy (startup + execution) seconds for one worker."""
        self.worker_busy_s[worker_id] = (
            self.worker_busy_s.get(worker_id, 0.0) + seconds
        )

    def record_straggler(self) -> None:
        """Count one injected pull straggler."""
        self.stragglers += 1

    def sample_memory(self, now: float, used_mb: float) -> None:
        """Record a warm-pool memory sample and update the peak.

        Runs of identical ``used_mb`` values are deduplicated on ingest:
        only the first and last sample of a constant run are kept (the
        last one slides forward in time), which shrinks long-run timelines
        without changing any piecewise-constant plot drawn from them.
        """
        mb = self._mem_mb
        if len(mb) >= 2 and mb[-1] == used_mb and mb[-2] == used_mb:
            self._mem_t[-1] = now
        else:
            self._mem_t.append(now)
            mb.append(used_mb)
        if used_mb > self.peak_warm_memory_mb:
            self.peak_warm_memory_mb = used_mb

    def sample_live_memory(self, live_mb: float) -> None:
        """Update the peak over all live containers' memory."""
        if live_mb > self.peak_live_memory_mb:
            self.peak_live_memory_mb = live_mb

    # -- row views (lazy materialization) ------------------------------------
    @property
    def records(self) -> List[InvocationRecord]:
        """Per-invocation rows, materialized lazily from the columns.

        The list is cached and rebuilt only when new invocations arrived
        since the last access; treat it as read-only.
        """
        view = self._records_view
        if view is not None and len(view) == len(self._inv_id):
            return view
        names = self._names
        view = [
            InvocationRecord(
                invocation_id=inv,
                function_name=names[fn],
                arrival_time=arr,
                container_id=cid,
                cold_start=bool(cold),
                match=_MATCH_MEMBERS[m],
                startup_latency_s=lat,
                breakdown=StartupBreakdown(
                    create_s=c, pull_s=p, install_s=i,
                    runtime_init_s=r, function_init_s=f, clean_s=cl,
                ),
                execution_time_s=ex,
                queue_delay_s=q,
                worker_id=w,
            )
            for inv, fn, arr, cid, cold, m, lat, q, w, ex, c, p, i, r, f, cl
            in zip(
                self._inv_id, self._fn_ix, self._arrival, self._cid,
                self._cold, self._match, self._latency, self._queue_delay,
                self._worker, self._exec, self._bd_create, self._bd_pull,
                self._bd_install, self._bd_rinit, self._bd_finit,
                self._bd_clean,
            )
        ]
        self._records_view = view
        return view

    @property
    def trace(self) -> List[TraceEvent]:
        """Structured trace events, materialized lazily from the columns."""
        view = self._trace_view
        if view is not None and len(view) == len(self._tr_time):
            return view
        names = self._names
        view = [
            TraceEvent(
                time=t,
                kind=names[k],
                container_id=None if cid < 0 else cid,
                function=None if fn < 0 else names[fn],
                detail=detail,
            )
            for t, k, cid, fn, detail in zip(
                self._tr_time, self._tr_kind, self._tr_cid,
                self._tr_fn, self._tr_detail,
            )
        ]
        self._trace_view = view
        return view

    @property
    def memory_timeline(self) -> List[Tuple[float, float]]:
        """Warm-pool ``(time, used_mb)`` samples (deduped constant runs)."""
        return list(zip(self._mem_t, self._mem_mb))

    @property
    def queue_delays(self) -> Sequence[float]:
        """Per-startup queueing delays, in admission order."""
        return self._queue_delays

    def invocation_columns(self) -> InvocationColumns:
        """The scalar per-invocation columns as one named view.

        Used by golden-trace recording and the columnar IPC packer to read
        rows without materializing :class:`InvocationRecord` objects.
        """
        names = self._names
        return InvocationColumns(
            invocation_id=self._inv_id,
            function_name=[names[i] for i in self._fn_ix],
            arrival_time=self._arrival,
            container_id=self._cid,
            cold_start=self._cold,
            match=self._match,
            startup_latency_s=self._latency,
            queue_delay_s=self._queue_delay,
            worker_id=self._worker,
            execution_time_s=self._exec,
        )

    # -- aggregates ---------------------------------------------------------
    @property
    def n_invocations(self) -> int:
        return len(self._inv_id)

    @property
    def total_startup_latency_s(self) -> float:
        return float(sum(self._latency))

    @property
    def mean_startup_latency_s(self) -> float:
        n = len(self._latency)
        if not n:
            return 0.0
        return self.total_startup_latency_s / n

    @property
    def cold_starts(self) -> int:
        return int(sum(self._cold))

    @property
    def warm_starts(self) -> int:
        return self.n_invocations - self.cold_starts

    def latencies(self) -> np.ndarray:
        """Per-invocation startup latencies in arrival order."""
        return np.array(self._latency, dtype=np.float64)

    def cumulative_latency(self) -> np.ndarray:
        """Cumulative startup latency vs arrival index (Fig. 9 series)."""
        return np.cumsum(self.latencies())

    def cumulative_cold_starts(self) -> np.ndarray:
        """Cumulative cold-start counts vs arrival index."""
        return np.cumsum(np.array(self._cold, dtype=np.int64))

    def match_histogram(self) -> Dict[MatchLevel, int]:
        """How many starts happened at each match level."""
        counts = [0] * len(_MATCH_MEMBERS)
        for m in self._match:
            counts[m] += 1
        return {lvl: counts[int(lvl)] for lvl in _MATCH_MEMBERS}

    @property
    def total_queueing_s(self) -> float:
        """Total time startups spent queued for worker slots."""
        return float(sum(self._queue_delays))

    @property
    def queued_starts(self) -> int:
        """How many startups had to wait for a worker slot."""
        return sum(1 for d in self._queue_delays if d > 0)

    def worker_utilization(self) -> Dict[int, float]:
        """Busy fraction per worker over the run's duration.

        Busy time is accumulated by :meth:`record_worker_busy` (startup
        plus execution); the denominator is :attr:`duration_s` (set by the
        simulator to the final simulation time at :meth:`finish`) times
        :attr:`worker_slots`, so a worker saturating all of its concurrency
        slots for the whole run reads 1.0.  Empty when admission control
        never recorded busy time.
        """
        if self.duration_s <= 0:
            return {w: 0.0 for w in self.worker_busy_s}
        denom = self.duration_s * max(1, self.worker_slots)
        return {
            w: busy / denom
            for w, busy in sorted(self.worker_busy_s.items())
        }

    def queueing_summary(self) -> Dict[str, float]:
        """Scalar queueing/utilization block (appended to :meth:`summary`
        when a worker concurrency limit was enforced)."""
        delays = np.array(self._queue_delays, dtype=np.float64)
        utilization = list(self.worker_utilization().values())
        return {
            "total_queueing_s": float(delays.sum()) if delays.size else 0.0,
            "mean_queueing_s": float(delays.mean()) if delays.size else 0.0,
            "p95_queueing_s": (
                float(np.percentile(delays, 95)) if delays.size else 0.0
            ),
            "queued_starts": float(self.queued_starts),
            "max_queue_depth": float(self.max_queue_depth),
            "mean_worker_utilization": (
                float(np.mean(utilization)) if utilization else 0.0
            ),
            "max_worker_utilization": (
                float(np.max(utilization)) if utilization else 0.0
            ),
        }

    def per_function_mean_latency(self) -> Dict[str, float]:
        """Mean startup latency per function name."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for ix, latency in zip(self._fn_ix, self._latency):
            sums[ix] = sums.get(ix, 0.0) + latency
            counts[ix] = counts.get(ix, 0) + 1
        names = self._names
        return {names[ix]: sums[ix] / counts[ix] for ix in sums}

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by experiment reports.

        One pass over the columns; the queueing/utilization block is only
        present when the run enforced a worker concurrency limit, so
        summaries of runs without admission control are unchanged from the
        pre-queueing simulator.
        """
        lat = self.latencies()
        base = {
            "invocations": float(self.n_invocations),
            "total_startup_s": self.total_startup_latency_s,
            "mean_startup_s": self.mean_startup_latency_s,
            "p50_startup_s": float(np.median(lat)) if lat.size else 0.0,
            "p95_startup_s": float(np.percentile(lat, 95)) if lat.size else 0.0,
            "cold_starts": float(self.cold_starts),
            "warm_starts": float(self.warm_starts),
            "evictions": float(self.evictions),
            "keep_alive_rejections": float(self.keep_alive_rejections),
            "ttl_expirations": float(self.ttl_expirations),
            "peak_warm_memory_mb": self.peak_warm_memory_mb,
            "peak_live_memory_mb": self.peak_live_memory_mb,
            "container_crashes": float(self.container_crashes),
            "stragglers": float(self.stragglers),
        }
        if self.queueing_enabled:
            base.update(self.queueing_summary())
        if self.surrogate_audits:
            base.update(self.surrogate_summary())
        if self.prewarms_issued:
            base.update(self.prewarm_summary())
        if self.lends_issued:
            base.update(self.lending_summary())
        return base

    def surrogate_summary(self) -> Dict[str, float]:
        """Distilled-policy audit block (present only when audits ran)."""
        return {
            "surrogate_audits": float(self.surrogate_audits),
            "surrogate_disagreements": float(self.surrogate_disagreements),
        }

    def prewarm_summary(self) -> Dict[str, float]:
        """Pre-warm accounting block (present only when pre-warms ran).

        ``prewarm_wasted`` counts pre-warmed containers destroyed before
        any invocation claimed them -- the forecaster's false positives.
        """
        return {
            "prewarms_issued": float(self.prewarms_issued),
            "prewarm_reuses": float(self.prewarm_reuses),
            "prewarm_wasted": float(self.prewarm_wasted),
        }

    def lending_summary(self) -> Dict[str, float]:
        """Container-lending block (present only when lends ran).

        ``lend_reuses`` counts lent containers later claimed by the
        function they were re-specialized for -- the lending hit count.
        """
        return {
            "lends_issued": float(self.lends_issued),
            "lend_reuses": float(self.lend_reuses),
        }


class BoundedTelemetry(Telemetry):
    """O(1)-memory metric collector for streaming million-invocation replays.

    Same recording interface and :meth:`summary` key set as
    :class:`Telemetry`, but per-invocation state is exact counters (counts,
    sums, match histogram, peaks) plus :class:`~repro.cluster.sketches.\
QuantileSketch` sketches for the latency/queueing percentiles, so memory
    stays constant while a 10M-invocation replay streams through.  The
    percentile summary cells (``p50_startup_s``, ``p95_startup_s``,
    ``p95_queueing_s``) are sketch estimates within the sketch's relative
    accuracy; every other cell is bit-exact.

    Row-level views are structurally unavailable: :attr:`records`,
    :meth:`invocation_columns`, :meth:`latencies` and friends raise
    ``RuntimeError``, and structured tracing cannot be enabled (both are
    inherently O(#invocations)).
    """

    def __init__(
        self,
        trace_enabled: bool = False,
        queueing_enabled: bool = False,
        worker_slots: int = 1,
        relative_accuracy: float = 0.01,
    ) -> None:
        if trace_enabled:
            raise ValueError(
                "structured tracing is O(#invocations); "
                "use the unbounded Telemetry for traced runs"
            )
        super().__init__(
            trace_enabled=False,
            queueing_enabled=queueing_enabled,
            worker_slots=worker_slots,
        )
        self.relative_accuracy = relative_accuracy
        self._n = 0
        self._n_cold = 0
        self._lat_total = 0.0
        self._match_counts = [0] * len(_MATCH_MEMBERS)
        self._lat_sketch = QuantileSketch(relative_accuracy)
        self._queue_sketch = QuantileSketch(relative_accuracy)
        self._queue_total = 0.0
        self._n_queued = 0

    # -- recording (bounded state only) --------------------------------------
    def record_invocation_values(
        self,
        invocation_id: int,
        function_name: str,
        arrival_time: float,
        container_id: int,
        cold_start: bool,
        match: int,
        startup_latency_s: float,
        create_s: float,
        pull_s: float,
        install_s: float,
        runtime_init_s: float,
        function_init_s: float,
        clean_s: float,
        execution_time_s: float,
        queue_delay_s: float = 0.0,
        worker_id: int = 0,
    ) -> None:
        """Fold one invocation into the counters and the latency sketch."""
        self._n += 1
        self._n_cold += cold_start
        self._lat_total += startup_latency_s
        self._match_counts[match] += 1
        self._lat_sketch.insert(startup_latency_s)

    def record_queueing(self, delay_s: float) -> None:
        """Fold one queueing delay into the totals and the queue sketch."""
        self._queue_total += delay_s
        if delay_s > 0:
            self._n_queued += 1
        self._queue_sketch.insert(delay_s)

    def sample_memory(self, now: float, used_mb: float) -> None:
        """Track the warm-memory peak only (no O(#changes) timeline)."""
        if used_mb > self.peak_warm_memory_mb:
            self.peak_warm_memory_mb = used_mb

    # -- aggregates (exact, from counters) -----------------------------------
    @property
    def n_invocations(self) -> int:
        """Exact invocation count."""
        return self._n

    @property
    def total_startup_latency_s(self) -> float:
        """Exact total startup latency."""
        return self._lat_total

    @property
    def mean_startup_latency_s(self) -> float:
        """Exact mean startup latency."""
        return self._lat_total / self._n if self._n else 0.0

    @property
    def cold_starts(self) -> int:
        """Exact cold-start count."""
        return self._n_cold

    def match_histogram(self) -> Dict[MatchLevel, int]:
        """Exact per-match-level start counts."""
        return {lvl: self._match_counts[int(lvl)] for lvl in _MATCH_MEMBERS}

    @property
    def total_queueing_s(self) -> float:
        """Exact total queueing delay."""
        return self._queue_total

    @property
    def queued_starts(self) -> int:
        """Exact count of startups that waited for a worker slot."""
        return self._n_queued

    def queueing_summary(self) -> Dict[str, float]:
        """Queueing/utilization block; ``p95_queueing_s`` is a sketch
        estimate, everything else exact."""
        utilization = list(self.worker_utilization().values())
        return {
            "total_queueing_s": self._queue_total,
            "mean_queueing_s": self._queue_sketch.mean,
            "p95_queueing_s": self._queue_sketch.percentile(95),
            "queued_starts": float(self._n_queued),
            "max_queue_depth": float(self.max_queue_depth),
            "mean_worker_utilization": (
                float(np.mean(utilization)) if utilization else 0.0
            ),
            "max_worker_utilization": (
                float(np.max(utilization)) if utilization else 0.0
            ),
        }

    def summary(self) -> Dict[str, float]:
        """Same key set as :meth:`Telemetry.summary`; the two startup
        percentiles are sketch estimates, every other cell exact."""
        base = {
            "invocations": float(self._n),
            "total_startup_s": self._lat_total,
            "mean_startup_s": self.mean_startup_latency_s,
            "p50_startup_s": self._lat_sketch.percentile(50),
            "p95_startup_s": self._lat_sketch.percentile(95),
            "cold_starts": float(self._n_cold),
            "warm_starts": float(self._n - self._n_cold),
            "evictions": float(self.evictions),
            "keep_alive_rejections": float(self.keep_alive_rejections),
            "ttl_expirations": float(self.ttl_expirations),
            "peak_warm_memory_mb": self.peak_warm_memory_mb,
            "peak_live_memory_mb": self.peak_live_memory_mb,
            "container_crashes": float(self.container_crashes),
            "stragglers": float(self.stragglers),
        }
        if self.queueing_enabled:
            base.update(self.queueing_summary())
        if self.surrogate_audits:
            base.update(self.surrogate_summary())
        if self.prewarms_issued:
            base.update(self.prewarm_summary())
        if self.lends_issued:
            base.update(self.lending_summary())
        return base

    # -- row views: structurally unavailable ---------------------------------
    def _unavailable(self, what: str) -> RuntimeError:
        """Build the error raised by row-level accessors."""
        return RuntimeError(
            f"{what} is unavailable under BoundedTelemetry: per-invocation "
            "rows are not retained in bounded (streaming) mode"
        )

    @property
    def records(self) -> List[InvocationRecord]:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("records")

    def invocation_columns(self) -> InvocationColumns:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("invocation_columns()")

    def latencies(self) -> np.ndarray:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("latencies()")

    def cumulative_latency(self) -> np.ndarray:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("cumulative_latency()")

    def cumulative_cold_starts(self) -> np.ndarray:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("cumulative_cold_starts()")

    def per_function_mean_latency(self) -> Dict[str, float]:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("per_function_mean_latency()")

    @property
    def queue_delays(self) -> Sequence[float]:
        """Unavailable in bounded mode (raises ``RuntimeError``)."""
        raise self._unavailable("queue_delays")
