"""Telemetry: everything the evaluation section measures.

The paper's figures need, per run: total/average startup latency, number of
cold starts, cumulative latency trajectories (Fig. 9), peak warm-pool memory
and eviction counts (Fig. 10), plus per-invocation breakdowns (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.containers.costmodel import StartupBreakdown
from repro.containers.matching import MatchLevel


@dataclass(frozen=True)
class InvocationRecord:
    """Per-invocation outcome.

    ``startup_latency_s`` includes any queueing delay the startup spent
    waiting for a worker concurrency slot; ``queue_delay_s`` records that
    component separately (0 when admission control is disabled).
    """

    invocation_id: int
    function_name: str
    arrival_time: float
    container_id: int
    cold_start: bool
    match: MatchLevel
    startup_latency_s: float
    breakdown: StartupBreakdown
    execution_time_s: float
    queue_delay_s: float = 0.0
    worker_id: int = 0

    @property
    def finish_time(self) -> float:
        return self.arrival_time + self.startup_latency_s + self.execution_time_s

    @property
    def service_latency_s(self) -> float:
        """Startup latency excluding time queued for a worker slot."""
        return self.startup_latency_s - self.queue_delay_s


@dataclass(frozen=True)
class TraceEvent:
    """One structured simulator event (emitted when tracing is enabled)."""

    time: float
    kind: str
    container_id: Optional[int] = None
    function: Optional[str] = None
    detail: str = ""

    def to_json(self) -> str:
        """Serialize as one JSON line."""
        import json

        return json.dumps({
            "t": round(self.time, 6),
            "kind": self.kind,
            "container": self.container_id,
            "function": self.function,
            "detail": self.detail,
        })


@dataclass
class Telemetry:
    """Mutable per-run metric collector."""

    records: List[InvocationRecord] = field(default_factory=list)
    evictions: int = 0
    keep_alive_rejections: int = 0
    ttl_expirations: int = 0
    container_crashes: int = 0
    stragglers: int = 0
    memory_timeline: List[Tuple[float, float]] = field(default_factory=list)
    peak_warm_memory_mb: float = 0.0
    peak_live_memory_mb: float = 0.0
    trace: List[TraceEvent] = field(default_factory=list)
    trace_enabled: bool = False
    #: Set by the simulator when a worker concurrency limit is enforced;
    #: gates the queueing/utilization block of :meth:`summary` so runs
    #: without admission control keep their historical summary keys.
    queueing_enabled: bool = False
    queue_delays: List[float] = field(default_factory=list)
    max_queue_depth: int = 0
    worker_busy_s: Dict[int, float] = field(default_factory=dict)
    duration_s: float = 0.0
    #: Concurrency slots per worker (the simulator's ``worker_concurrency``);
    #: normalizes :meth:`worker_utilization` so a fully-busy worker reads 1.0
    #: regardless of how many slots it runs.
    worker_slots: int = 1

    # -- recording ----------------------------------------------------------
    def record_invocation(self, record: InvocationRecord) -> None:
        """Append one per-invocation record."""
        self.records.append(record)

    def record_eviction(self, n: int = 1) -> None:
        """Count eviction(s) of warm containers."""
        self.evictions += n

    def record_rejection(self) -> None:
        """Count one rejected keep-warm request."""
        self.keep_alive_rejections += 1

    def record_ttl_expiration(self, n: int = 1) -> None:
        """Count TTL expiration(s) of idle containers."""
        self.ttl_expirations += n

    def record_event(
        self,
        time: float,
        kind: str,
        container_id: Optional[int] = None,
        function: Optional[str] = None,
        detail: str = "",
    ) -> None:
        """Append a structured trace event (no-op unless tracing is on).

        The disabled path returns before any allocation.  Hot callers
        (e.g. the simulator's per-invocation events) additionally check
        :attr:`trace_enabled` *before* formatting ``detail`` strings, so a
        non-traced run never pays for event formatting at all.
        """
        if not self.trace_enabled:
            return
        self.trace.append(TraceEvent(time, kind, container_id,
                                     function, detail))

    def trace_to_jsonl(self, path) -> "object":
        """Write the trace as JSON lines; returns the path."""
        from pathlib import Path

        path = Path(path)
        path.write_text("\n".join(e.to_json() for e in self.trace) + "\n")
        return path

    def record_crash(self) -> None:
        """Count one injected container crash."""
        self.container_crashes += 1

    def record_queueing(self, delay_s: float) -> None:
        """Record one startup's queueing delay (0 when it started at once)."""
        self.queue_delays.append(delay_s)

    def record_queue_depth(self, depth: int) -> None:
        """Track the deepest per-worker startup queue observed."""
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def record_worker_busy(self, worker_id: int, seconds: float) -> None:
        """Accumulate busy (startup + execution) seconds for one worker."""
        self.worker_busy_s[worker_id] = (
            self.worker_busy_s.get(worker_id, 0.0) + seconds
        )

    def record_straggler(self) -> None:
        """Count one injected pull straggler."""
        self.stragglers += 1

    def sample_memory(self, now: float, used_mb: float) -> None:
        """Record a warm-pool memory sample and update the peak."""
        self.memory_timeline.append((now, used_mb))
        self.peak_warm_memory_mb = max(self.peak_warm_memory_mb, used_mb)

    def sample_live_memory(self, live_mb: float) -> None:
        """Update the peak over all live containers' memory."""
        self.peak_live_memory_mb = max(self.peak_live_memory_mb, live_mb)

    # -- aggregates ---------------------------------------------------------
    @property
    def n_invocations(self) -> int:
        return len(self.records)

    @property
    def total_startup_latency_s(self) -> float:
        return float(sum(r.startup_latency_s for r in self.records))

    @property
    def mean_startup_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return self.total_startup_latency_s / len(self.records)

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.records if r.cold_start)

    @property
    def warm_starts(self) -> int:
        return self.n_invocations - self.cold_starts

    def latencies(self) -> np.ndarray:
        """Per-invocation startup latencies in arrival order."""
        return np.array([r.startup_latency_s for r in self.records], dtype=np.float64)

    def cumulative_latency(self) -> np.ndarray:
        """Cumulative startup latency vs arrival index (Fig. 9 series)."""
        return np.cumsum(self.latencies())

    def cumulative_cold_starts(self) -> np.ndarray:
        """Cumulative cold-start counts vs arrival index."""
        flags = np.array([r.cold_start for r in self.records], dtype=np.int64)
        return np.cumsum(flags)

    def match_histogram(self) -> Dict[MatchLevel, int]:
        """How many starts happened at each match level."""
        hist: Dict[MatchLevel, int] = {lvl: 0 for lvl in MatchLevel}
        for r in self.records:
            hist[r.match] += 1
        return hist

    @property
    def total_queueing_s(self) -> float:
        """Total time startups spent queued for worker slots."""
        return float(sum(self.queue_delays))

    @property
    def queued_starts(self) -> int:
        """How many startups had to wait for a worker slot."""
        return sum(1 for d in self.queue_delays if d > 0)

    def worker_utilization(self) -> Dict[int, float]:
        """Busy fraction per worker over the run's duration.

        Busy time is accumulated by :meth:`record_worker_busy` (startup
        plus execution); the denominator is :attr:`duration_s` (set by the
        simulator to the final simulation time at :meth:`finish`) times
        :attr:`worker_slots`, so a worker saturating all of its concurrency
        slots for the whole run reads 1.0.  Empty when admission control
        never recorded busy time.
        """
        if self.duration_s <= 0:
            return {w: 0.0 for w in self.worker_busy_s}
        denom = self.duration_s * max(1, self.worker_slots)
        return {
            w: busy / denom
            for w, busy in sorted(self.worker_busy_s.items())
        }

    def queueing_summary(self) -> Dict[str, float]:
        """Scalar queueing/utilization block (appended to :meth:`summary`
        when a worker concurrency limit was enforced)."""
        delays = np.array(self.queue_delays, dtype=np.float64)
        utilization = list(self.worker_utilization().values())
        return {
            "total_queueing_s": float(delays.sum()) if delays.size else 0.0,
            "mean_queueing_s": float(delays.mean()) if delays.size else 0.0,
            "p95_queueing_s": (
                float(np.percentile(delays, 95)) if delays.size else 0.0
            ),
            "queued_starts": float(self.queued_starts),
            "max_queue_depth": float(self.max_queue_depth),
            "mean_worker_utilization": (
                float(np.mean(utilization)) if utilization else 0.0
            ),
            "max_worker_utilization": (
                float(np.max(utilization)) if utilization else 0.0
            ),
        }

    def per_function_mean_latency(self) -> Dict[str, float]:
        """Mean startup latency per function name."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for r in self.records:
            sums[r.function_name] = sums.get(r.function_name, 0.0) + r.startup_latency_s
            counts[r.function_name] = counts.get(r.function_name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by experiment reports.

        The queueing/utilization block is only present when the run
        enforced a worker concurrency limit, so summaries of runs without
        admission control are unchanged from the pre-queueing simulator.
        """
        lat = self.latencies()
        base = {
            "invocations": float(self.n_invocations),
            "total_startup_s": self.total_startup_latency_s,
            "mean_startup_s": self.mean_startup_latency_s,
            "p50_startup_s": float(np.median(lat)) if lat.size else 0.0,
            "p95_startup_s": float(np.percentile(lat, 95)) if lat.size else 0.0,
            "cold_starts": float(self.cold_starts),
            "warm_starts": float(self.warm_starts),
            "evictions": float(self.evictions),
            "keep_alive_rejections": float(self.keep_alive_rejections),
            "ttl_expirations": float(self.ttl_expirations),
            "peak_warm_memory_mb": self.peak_warm_memory_mb,
            "peak_live_memory_mb": self.peak_live_memory_mb,
            "container_crashes": float(self.container_crashes),
            "stragglers": float(self.stragglers),
        }
        if self.queueing_enabled:
            base.update(self.queueing_summary())
        return base
