"""Bounded-memory quantile sketches for streaming telemetry.

A DDSketch-style log-bucketed quantile sketch (Masson, Rim & Lee, VLDB'19):
values land in geometrically-spaced buckets ``gamma^k`` with
``gamma = (1 + a) / (1 - a)``, which guarantees every quantile estimate is
within relative error ``a`` of a true sample value.  Memory is
O(log(max/min) / log(gamma)) buckets regardless of how many values are
inserted -- for startup latencies spanning 1 ms .. 1000 s at 1% accuracy
that is a few hundred integer counters, which is what lets
:class:`~repro.cluster.telemetry.BoundedTelemetry` summarize a
10M-invocation streaming replay in O(1) space.

The sketch is fully deterministic (no sampling), insertion-order
independent, and mergeable, so per-shard sketches from parallel experiment
workers could be combined without widening the error bound.
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Relative-error streaming quantile sketch over non-negative values.

    Parameters
    ----------
    relative_accuracy:
        Guaranteed bound ``a`` on the relative error of every quantile
        estimate: for any ``q``, ``|quantile(q) - x| <= a * x`` where ``x``
        is the true sample order statistic.  Default 1%.
    """

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count; bucket ``k`` covers ``(gamma^(k-1), gamma^k]``.
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- ingestion -----------------------------------------------------------
    def insert(self, value: float) -> None:
        """Add one value (must be >= 0; telemetry latencies always are)."""
        if value < 0:
            raise ValueError("QuantileSketch only accepts non-negative values")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value == 0.0:
            self._zero_count += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (same accuracy required)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError("cannot merge sketches of different accuracy")
        for key, n in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + n
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- queries -------------------------------------------------------------
    @property
    def count(self) -> int:
        """How many values were inserted."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact running sum of inserted values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Exact mean of inserted values (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Exact minimum (0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Exact maximum (0 when empty)."""
        return self._max if self._count else 0.0

    @property
    def n_buckets(self) -> int:
        """Live bucket count -- the sketch's memory footprint."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Within ``relative_accuracy`` of the true order statistic; exact at
        the extremes (``q=0`` -> min, ``q=1`` -> max) and for zeros.
        Returns 0 for an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self._count - 1)
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        gamma = self._gamma
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen > rank:
                # Midpoint of (gamma^(key-1), gamma^key]: relative error
                # against any value in the bucket is <= relative_accuracy.
                estimate = 2.0 * gamma ** key / (gamma + 1.0)
                # Clamp into the exact observed range so estimates never
                # stray outside [min, max] on sparse tails.
                return min(max(estimate, self._min), self._max)
        return self.max  # pragma: no cover - rank < count by construction

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``0 <= p <= 100``)."""
        return self.quantile(p / 100.0)
