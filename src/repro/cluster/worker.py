"""Worker-node accounting.

The paper's system runs on a cluster of workers, each reserving memory for
the warm pool.  Scheduling decisions in the paper (and here) operate on the
aggregate pool; the :class:`WorkerSet` tracks *placement* -- which worker
hosts which container -- using least-loaded assignment, so experiments can
report per-worker distribution without affecting latency results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Worker:
    """One worker node hosting containers."""

    worker_id: int
    container_ids: set = field(default_factory=set)
    memory_mb: float = 0.0

    @property
    def n_containers(self) -> int:
        return len(self.container_ids)


class WorkerSet:
    """Least-loaded (by memory) container placement across workers."""

    def __init__(self, n_workers: int = 4) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._workers: List[Worker] = [Worker(i) for i in range(n_workers)]
        self._placement: Dict[int, int] = {}

    def place(self, container_id: int, memory_mb: float) -> int:
        """Assign a container to the least-loaded worker; returns worker id."""
        if container_id in self._placement:
            raise ValueError(f"container {container_id} already placed")
        worker = min(self._workers, key=lambda w: (w.memory_mb, w.worker_id))
        worker.container_ids.add(container_id)
        worker.memory_mb += memory_mb
        self._placement[container_id] = worker.worker_id
        return worker.worker_id

    def release(self, container_id: int, memory_mb: float) -> None:
        """Remove a container from its worker."""
        worker_id = self._placement.pop(container_id, None)
        if worker_id is None:
            raise KeyError(f"container {container_id} not placed")
        worker = self._workers[worker_id]
        worker.container_ids.discard(container_id)
        worker.memory_mb = max(0.0, worker.memory_mb - memory_mb)

    def worker_of(self, container_id: int) -> int:
        """The worker id hosting a container."""
        return self._placement[container_id]

    def load_snapshot(self) -> List[Dict[str, float]]:
        """Per-worker load for telemetry/reporting."""
        return [
            {"worker_id": w.worker_id, "containers": float(w.n_containers),
             "memory_mb": w.memory_mb}
            for w in self._workers
        ]

    @property
    def n_workers(self) -> int:
        return len(self._workers)
