"""Worker-node accounting.

The paper's system runs on a cluster of workers, each reserving memory for
the warm pool.  The :class:`WorkerSet` tracks *placement* -- which worker
hosts which container -- and exposes per-worker load views.  Worker
*selection* (least-loaded fallback, capacity filtering, startup admission
and queueing) lives in :class:`~repro.cluster.placement.PlacementEngine`;
the set itself is pure bookkeeping so both layers share one source of
truth about who hosts what.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Worker:
    """One worker node hosting containers."""

    worker_id: int
    container_ids: set = field(default_factory=set)
    memory_mb: float = 0.0

    @property
    def n_containers(self) -> int:
        return len(self.container_ids)


class WorkerSet:
    """Container-to-worker placement bookkeeping across a cluster."""

    def __init__(self, n_workers: int = 4) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._workers: List[Worker] = [Worker(i) for i in range(n_workers)]
        self._placement: Dict[int, int] = {}

    def workers(self) -> List[Worker]:
        """The live worker objects (placement engines read loads off these)."""
        return self._workers

    def place(self, container_id: int, memory_mb: float) -> int:
        """Assign a container to the least-loaded worker; returns worker id.

        Least-loaded means smallest hosted memory, ties broken by worker
        id -- the historical default selection rule, kept for callers that
        bypass the placement engine.
        """
        worker = min(self._workers, key=lambda w: (w.memory_mb, w.worker_id))
        return self.place_on(worker.worker_id, container_id, memory_mb)

    def place_on(self, worker_id: int, container_id: int, memory_mb: float) -> int:
        """Assign a container to a specific worker; returns the worker id."""
        if container_id in self._placement:
            raise ValueError(f"container {container_id} already placed")
        worker = self._workers[worker_id]
        worker.container_ids.add(container_id)
        worker.memory_mb += memory_mb
        self._placement[container_id] = worker.worker_id
        return worker.worker_id

    def release(self, container_id: int, memory_mb: float) -> None:
        """Remove a container from its worker."""
        worker_id = self._placement.pop(container_id, None)
        if worker_id is None:
            raise KeyError(f"container {container_id} not placed")
        worker = self._workers[worker_id]
        worker.container_ids.discard(container_id)
        worker.memory_mb = max(0.0, worker.memory_mb - memory_mb)

    def worker_of(self, container_id: int) -> int:
        """The worker id hosting a container."""
        return self._placement[container_id]

    def container_counts(self) -> Tuple[int, ...]:
        """Hosted container count per worker (busy and idle alike)."""
        return tuple(w.n_containers for w in self._workers)

    def memory_loads(self) -> Tuple[float, ...]:
        """Hosted container memory per worker, in MB."""
        return tuple(w.memory_mb for w in self._workers)

    def load_snapshot(self) -> List[Dict[str, float]]:
        """Per-worker load for telemetry/reporting."""
        return [
            {"worker_id": w.worker_id, "containers": float(w.n_containers),
             "memory_mb": w.memory_mb}
            for w in self._workers
        ]

    @property
    def n_workers(self) -> int:
        return len(self._workers)
