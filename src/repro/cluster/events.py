"""Discrete-event machinery for the cluster simulator.

A tiny, dependency-free event queue built on ``heapq``.  Events are ordered
by ``(time, sequence)`` so that simultaneous events are processed in
insertion order -- this keeps the simulator fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.Enum):
    """Kinds of simulator events."""

    ARRIVAL = "arrival"              # a function invocation arrives
    STARTUP_COMPLETE = "startup"     # container finished its startup phases
    EXECUTION_COMPLETE = "execution" # function finished executing


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled simulator event.

    ``payload`` carries the invocation or container involved; it is excluded
    from ordering so only ``(time, seq)`` determine processing order.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at ``time``; returns the created event."""
        if time < 0:
            raise ValueError("event time must be >= 0")
        event = Event(time=time, seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
