"""Discrete-event machinery for the cluster simulator.

A tiny, dependency-free event queue built on ``heapq``.  Events are ordered
by ``(time, priority, sequence)``: arrivals carry priority 0 and all other
kinds priority 1, so a simultaneous arrival is always processed before a
completion regardless of *when* it was scheduled; within a priority class,
simultaneous events run in insertion order.  This keeps the simulator fully
deterministic -- and makes the incremental arrival feed
(``ClusterSimulator.run_stream``, which schedules each arrival just in
time) pop events in exactly the order of the batch path, which schedules
every arrival up front with the earliest sequence numbers.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.Enum):
    """Kinds of simulator events."""

    ARRIVAL = "arrival"              # a function invocation arrives
    STARTUP_COMPLETE = "startup"     # container finished its startup phases
    EXECUTION_COMPLETE = "execution" # function finished executing


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled simulator event.

    ``payload`` carries the invocation or container involved; it is excluded
    from ordering so only ``(time, priority, seq)`` determine processing
    order.  ``priority`` is derived from the kind (0 for arrivals, 1
    otherwise) by :meth:`EventQueue.push`.
    """

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at ``time``; returns the created event."""
        if time < 0:
            raise ValueError("event time must be >= 0")
        event = Event(
            time=time,
            priority=0 if kind is EventKind.ARRIVAL else 1,
            seq=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
