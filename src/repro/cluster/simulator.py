"""Discrete-event serverless cluster simulator.

Faithful to the paper's system model (Section III-A): invocations arrive
continuously; for each one a scheduler picks a warm container from the
fix-sized pool or cold-starts a new container; after execution the container
is put back into the pool, with the eviction policy making room (or rejecting
the keep-warm request).

The simulator exposes two equivalent driving modes:

* :meth:`ClusterSimulator.run` -- batch mode with a
  :class:`~repro.schedulers.base.Scheduler`;
* the incremental API (:meth:`load` / :meth:`next_decision_point` /
  :meth:`apply_decision` / :meth:`finish`) used by the DRL environment, which
  needs to interleave learning with decisions.

Both modes share every line of event-handling code, so trained policies see
exactly the dynamics they were trained on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.events import EventKind, EventQueue
from repro.cluster.eviction import EvictionPolicy, LRUEviction
from repro.cluster.faults import FaultConfig, FaultModel
from repro.cluster.pool import PoolSet, WarmPool
from repro.cluster.telemetry import InvocationRecord, Telemetry
from repro.cluster.worker import WorkerSet
from repro.containers.cleaner import ContainerCleaner
from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel, match_level
from repro.containers.volumes import VolumeStore
from repro.schedulers.base import Decision, Scheduler, SchedulingContext
from repro.workloads.workload import Invocation, Workload


class InvalidDecisionError(RuntimeError):
    """A scheduler returned an unusable decision (bad id, busy, no-match)."""


@dataclass(frozen=True)
class SimulationConfig:
    """Cluster configuration.

    Parameters
    ----------
    pool_capacity_mb:
        Warm-pool memory capacity (``float("inf")`` = unbounded, used to
        derive the paper's *Loose* sizing).
    cost_model:
        Startup cost model shared by scheduling estimates and actual costs.
    n_workers:
        Workers for placement accounting (does not affect latency).
    delta_pricing:
        Price warm reuse by per-package deltas
        (:meth:`StartupCostModel.delta_breakdown`) instead of Table-I level
        costs.  Enables W-style and zygote-style experiments where a
        container's extra packages should not be re-pulled.
    per_worker_pools:
        Partition the warm-pool capacity into one shard per worker (the
        paper's "each worker has a reserved memory space").  Scheduling
        still sees the union of idle containers; keep-alive and eviction
        happen on the container's own worker.
    """

    pool_capacity_mb: float
    cost_model: StartupCostModel = field(default_factory=StartupCostModel)
    n_workers: int = 4
    delta_pricing: bool = False
    per_worker_pools: bool = False
    faults: "FaultConfig" = field(default_factory=lambda: FaultConfig())
    trace: bool = False


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    workload_name: str
    scheduler_name: str
    pool_capacity_mb: float
    telemetry: Telemetry

    def summary(self) -> Dict[str, float]:
        """Scalar summary of the run's telemetry."""
        return self.telemetry.summary()


class ClusterSimulator:
    """The event-driven serverless platform."""

    def __init__(
        self,
        config: SimulationConfig,
        eviction_policy: EvictionPolicy | None = None,
    ) -> None:
        self.config = config
        self.eviction = eviction_policy or LRUEviction()
        self.pool = PoolSet(
            config.pool_capacity_mb,
            n_shards=config.n_workers if config.per_worker_pools else 1,
        )
        self.telemetry = Telemetry(trace_enabled=config.trace)
        self.workers = WorkerSet(config.n_workers)
        self.volume_store = VolumeStore()
        self.cleaner = ContainerCleaner(self.volume_store)
        self.now = 0.0
        self._faults = FaultModel(config.faults)
        self._events = EventQueue()
        self._container_ids = itertools.count(1)
        self._live: Dict[int, Container] = {}
        self._live_memory_mb = 0.0
        self._pending: Optional[Invocation] = None
        self._workload_name = "<none>"
        self._finished = False

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------
    def run(self, workload: Workload, scheduler: Scheduler) -> SimulationResult:
        """Simulate ``workload`` end-to-end under ``scheduler``."""
        self.load(workload)
        while True:
            ctx = self.next_decision_point()
            if ctx is None:
                break
            self.apply_decision(scheduler.decide(ctx))
        return self.finish(scheduler_name=scheduler.name)

    # ------------------------------------------------------------------
    # Incremental mode (used by the DRL environment)
    # ------------------------------------------------------------------
    def load(self, workload: Workload) -> None:
        """Queue every arrival of ``workload``; resets nothing else."""
        if self._finished:
            raise RuntimeError("simulator already finished; build a new one")
        self._workload_name = workload.name
        for inv in workload:
            self._events.push(inv.arrival_time, EventKind.ARRIVAL, inv)

    def prewarm(self, image, owner_name: str = "prewarm") -> Container:
        """Provision an idle warm container before (or between) arrivals.

        Implements proactive pre-warming (Shahrad et al.) and zygote
        provisioning (Li et al.): the container appears in the pool
        immediately and consumes pool capacity; the eviction policy makes
        room if needed.  Raises :class:`~repro.cluster.pool.PoolFullError`
        via the eviction policy returning ``None`` when it cannot fit.
        """
        container = Container(
            container_id=next(self._container_ids),
            image=image,
            created_at=self.now,
            last_used_at=self.now,
        )
        container.state = ContainerState.IDLE
        self._live[container.container_id] = container
        self._live_memory_mb += container.memory_mb
        self.telemetry.sample_live_memory(self._live_memory_mb)
        self.workers.place(container.container_id, container.memory_mb)
        self.cleaner.initial_mount(container, owner_name)
        container.current_function = owner_name
        self._keep_alive(container)
        return container

    def next_decision_point(self) -> Optional[SchedulingContext]:
        """Advance until the next arrival; return its scheduling context.

        Completion events between arrivals are processed internally.
        Returns ``None`` once all arrivals have been handled.
        """
        if self._pending is not None:
            raise RuntimeError("previous decision not applied yet")
        while self._events:
            event = self._events.pop()
            self.now = max(self.now, event.time)
            self._expire_ttl()
            if event.kind is EventKind.ARRIVAL:
                self._pending = event.payload
                return self._context_for(self._pending)
            self._handle_non_arrival(event)
        return None

    def apply_decision(self, decision: Decision) -> InvocationRecord:
        """Execute a scheduling decision for the pending invocation."""
        if self._pending is None:
            raise RuntimeError("no pending invocation; call next_decision_point")
        invocation, self._pending = self._pending, None
        spec = invocation.spec

        if decision.is_cold:
            container = Container(
                container_id=next(self._container_ids),
                image=spec.image,
                created_at=self.now,
            )
            self._live[container.container_id] = container
            self._live_memory_mb += container.memory_mb
            self.workers.place(container.container_id, container.memory_mb)
            self.cleaner.initial_mount(container, spec.name)
            match = MatchLevel.NO_MATCH
            old_image = spec.image
        else:
            container = self._claim_container(decision.container_id, invocation)
            old_memory = container.memory_mb
            old_image = container.image
            # Zygote-style reuse keeps the container's own (superset) image;
            # the cleaner then only swaps the user-data volume.
            target_image = (
                container.image if decision.preserve_image else spec.image
            )
            result = self.cleaner.repack(container, target_image, spec.name)
            self._live_memory_mb += container.memory_mb - old_memory
            match = (
                match_level(spec.image, container.image)
                if decision.preserve_image
                else result.match
            )
        self.telemetry.sample_live_memory(self._live_memory_mb)

        if not decision.is_cold and self.config.delta_pricing:
            breakdown = self.config.cost_model.delta_breakdown(
                spec.image, old_image, spec.function_init_s
            )
        else:
            breakdown = self.config.cost_model.breakdown(
                spec.image, match, spec.function_init_s
            )
        if self.config.faults.enabled:
            breakdown, straggled = self._faults.perturb_breakdown(breakdown)
            if straggled:
                self.telemetry.record_straggler()
        latency = breakdown.total_s
        ready_at = self.now + latency
        container.begin_startup(spec.name, self.now, ready_at)
        self._events.push(ready_at, EventKind.STARTUP_COMPLETE,
                          (container, invocation))
        self.eviction.on_function_start(spec.name, latency,
                                        container.memory_mb, self.now)
        if self.telemetry.trace_enabled:
            # Guarded so the detail string is only formatted when tracing.
            self.telemetry.record_event(
                self.now,
                "cold_start" if decision.is_cold else f"warm_{match.name}",
                container.container_id,
                spec.name,
                f"latency={latency:.3f}s",
            )
        record = InvocationRecord(
            invocation_id=invocation.invocation_id,
            function_name=spec.name,
            arrival_time=invocation.arrival_time,
            container_id=container.container_id,
            cold_start=decision.is_cold,
            match=match,
            startup_latency_s=latency,
            breakdown=breakdown,
            execution_time_s=invocation.execution_time_s,
        )
        self.telemetry.record_invocation(record)
        return record

    def finish(self, scheduler_name: str = "policy") -> SimulationResult:
        """Drain remaining events and return the run result."""
        if self._pending is not None:
            raise RuntimeError("pending decision not applied")
        while self._events:
            event = self._events.pop()
            self.now = max(self.now, event.time)
            self._expire_ttl()
            if event.kind is EventKind.ARRIVAL:
                raise RuntimeError("finish() called with arrivals outstanding")
            self._handle_non_arrival(event)
        self._finished = True
        return SimulationResult(
            workload_name=self._workload_name,
            scheduler_name=scheduler_name,
            pool_capacity_mb=self.config.pool_capacity_mb,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _context_for(self, invocation: Invocation) -> SchedulingContext:
        return SchedulingContext(
            now=self.now,
            invocation=invocation,
            idle_containers=tuple(self.pool.lru_order()),
            cost_model=self.config.cost_model,
            pool_capacity_mb=self.pool.capacity_mb,
            pool_used_mb=self.pool.used_mb,
            pool=self.pool,
        )

    def _claim_container(
        self, container_id: Optional[int], invocation: Invocation
    ) -> Container:
        if container_id is None:  # pragma: no cover - guarded by is_cold
            raise InvalidDecisionError("warm decision without a container id")
        container = self.pool.get(container_id)
        if container is None:
            raise InvalidDecisionError(
                f"container {container_id} is not an idle pooled container"
            )
        if match_level(invocation.spec.image, container.image) is MatchLevel.NO_MATCH:
            raise InvalidDecisionError(
                f"container {container_id} does not match invocation "
                f"{invocation.spec.name} at any level"
            )
        self.pool.remove(container_id)
        self.telemetry.sample_memory(self.now, self.pool.used_mb)
        container.claim()
        return container

    def _handle_non_arrival(self, event) -> None:
        container, invocation = event.payload
        if event.kind is EventKind.STARTUP_COMPLETE:
            finish_at = self.now + invocation.execution_time_s
            container.begin_execution(self.now, finish_at)
            self._events.push(finish_at, EventKind.EXECUTION_COMPLETE,
                              (container, invocation))
        elif event.kind is EventKind.EXECUTION_COMPLETE:
            container.finish_execution(self.now)
            if self.telemetry.trace_enabled:
                self.telemetry.record_event(
                    self.now, "execution_complete", container.container_id,
                    container.current_function,
                )
            if self.config.faults.enabled and self._faults.should_crash():
                self._destroy(container)
                self.telemetry.record_crash()
                if self.telemetry.trace_enabled:
                    self.telemetry.record_event(
                        self.now, "crash", container.container_id,
                        container.current_function,
                    )
            else:
                self._keep_alive(container)
        else:  # pragma: no cover - exhaustive enum
            raise RuntimeError(f"unhandled event kind {event.kind}")

    def _keep_alive(self, container: Container) -> None:
        """Try to put a finished container back into its worker's pool."""
        shard_index = (
            self.workers.worker_of(container.container_id)
            if self.config.per_worker_pools
            else 0
        )
        shard = self.pool.shard(shard_index)
        victims = self.eviction.select_victims(shard, container, self.now)
        if victims is None:
            self._destroy(container)
            self.telemetry.record_rejection()
            return
        for victim in victims:
            self.pool.remove(victim.container_id)
            self._destroy(victim)
            self.telemetry.record_eviction()
            if self.telemetry.trace_enabled:
                self.telemetry.record_event(
                    self.now, "eviction", victim.container_id,
                    victim.current_function,
                )
        self.pool.add(container, shard_index)
        self.telemetry.sample_memory(self.now, self.pool.used_mb)

    def _expire_ttl(self) -> None:
        ttl = self.eviction.ttl_s
        if ttl is None:
            return
        # LRU insertion order implies idle-time order under a fixed TTL, so
        # expiry pops only the actually-expired heads (O(expired + shards)
        # per event instead of an O(pool) scan).
        expired = self.pool.expire_older_than(self.now - ttl)
        for container in expired:
            self._destroy(container)
            self.telemetry.record_ttl_expiration()
        if expired:
            self.telemetry.sample_memory(self.now, self.pool.used_mb)

    def _destroy(self, container: Container) -> None:
        if container.state is not ContainerState.EVICTED:
            container.evict()
        if self._live.pop(container.container_id, None) is not None:
            self._live_memory_mb = max(
                0.0, self._live_memory_mb - container.memory_mb
            )
        self.workers.release(container.container_id, container.memory_mb)
