"""Discrete-event serverless cluster simulator (the policy driver).

Faithful to the paper's system model (Section III-A): invocations arrive
continuously; for each one a scheduler picks a warm container from the
fix-sized pool or cold-starts a new container; after execution the container
is put back into the pool, with the eviction policy making room (or rejecting
the keep-warm request).

The simulator is layered control-plane / data-plane:

* :class:`~repro.cluster.eventloop.EventLoop` -- the clock, the event
  queue and the per-event TTL sweep (control plane);
* :class:`~repro.cluster.lifecycle.ContainerLifecycle` -- container
  create/claim/repack/keep-alive/destroy, the cleaner, volumes and fault
  hooks (data plane);
* :class:`~repro.cluster.placement.PlacementEngine` -- worker selection,
  per-worker memory capacity and startup admission: with a finite
  ``worker_concurrency``, startups beyond the limit queue FIFO on their
  worker and the queueing delay is added to startup latency (and recorded
  separately in telemetry);
* :class:`ClusterSimulator` -- the thin policy driver that turns scheduler
  decisions into lifecycle/placement calls and telemetry records.

The driver exposes three equivalent driving modes:

* :meth:`ClusterSimulator.run` -- batch mode with a
  :class:`~repro.schedulers.base.Scheduler`: every arrival is queued up
  front;
* :meth:`ClusterSimulator.run_stream` -- streaming mode: arrivals are
  pulled one at a time from a lazy
  :class:`~repro.workloads.stream.InvocationStream`, so the event queue
  holds exactly one future arrival (plus in-flight completions) and
  replaying a million-invocation trace never materializes it.  Because
  events are ordered ``(time, priority, seq)`` with arrivals at priority 0,
  the pop order -- and therefore every decision, record and summary -- is
  byte-identical to batch mode (the ``streaming_vs_materialized``
  differential oracle enforces this);
* the incremental API (:meth:`load` / :meth:`next_decision_point` /
  :meth:`apply_decision` / :meth:`finish`) used by the DRL environment, which
  needs to interleave learning with decisions.

All modes share every line of event-handling code, so trained policies see
exactly the dynamics they were trained on.  With ``worker_concurrency``
unset the dynamics (and the resulting telemetry summaries) are identical
to the pre-layering monolith.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional

from repro.cluster.eventloop import EventLoop
from repro.cluster.events import EventKind
from repro.cluster.eviction import EvictionPolicy, LRUEviction
from repro.cluster.faults import FaultConfig
from repro.cluster.lifecycle import ContainerLifecycle, InvalidDecisionError
from repro.cluster.placement import PlacementEngine
from repro.cluster.pool import PoolSet
from repro.cluster.telemetry import InvocationRecord, Telemetry
from repro.cluster.worker import WorkerSet
from repro.containers.cleaner import ContainerCleaner
from repro.containers.container import Container
from repro.containers.costmodel import StartupCostModel
from repro.containers.matching import MatchLevel, match_level
from repro.containers.volumes import VolumeStore
from repro.schedulers.base import (
    Decision,
    PrewarmRequest,
    Scheduler,
    SchedulingContext,
)
from repro.workloads.workload import Invocation, Workload

__all__ = [
    "ClusterSimulator",
    "InvalidDecisionError",
    "SimulationConfig",
    "SimulationResult",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Cluster configuration.

    Parameters
    ----------
    pool_capacity_mb:
        Warm-pool memory capacity (``float("inf")`` = unbounded, used to
        derive the paper's *Loose* sizing).
    cost_model:
        Startup cost model shared by scheduling estimates and actual costs.
    n_workers:
        Worker nodes in the cluster.  With ``worker_concurrency`` set this
        is a first-class experimental knob: fewer workers means more
        startup queueing at the same arrival rate.
    delta_pricing:
        Price warm reuse by per-package deltas
        (:meth:`StartupCostModel.delta_breakdown`) instead of Table-I level
        costs.  Enables W-style and zygote-style experiments where a
        container's extra packages should not be re-pulled.
    per_worker_pools:
        Partition the warm-pool capacity into one shard per worker (the
        paper's "each worker has a reserved memory space").  Scheduling
        still sees the union of idle containers; keep-alive and eviction
        happen on the container's own worker.
    worker_concurrency:
        Maximum containers concurrently starting or executing per worker.
        ``None`` (the default) disables admission control entirely and
        reproduces the historical no-contention dynamics byte-for-byte;
        a finite limit queues excess startups FIFO per worker, adds the
        queueing delay to startup latency, and unlocks the queueing /
        utilization telemetry block.
    worker_capacity_mb:
        Optional per-worker memory bound used to filter cold-start
        placement (see :class:`~repro.cluster.placement.PlacementEngine`).
    bounded_telemetry:
        Collect telemetry with
        :class:`~repro.cluster.telemetry.BoundedTelemetry`: exact counters
        plus relative-error quantile sketches instead of per-invocation
        columns, so a 10M-invocation streaming replay records O(1) state.
        Summaries carry the same keys; the latency/queueing percentiles
        are sketch estimates (within the sketch's relative-accuracy bound)
        rather than exact order statistics.  Row views
        (``telemetry.records``, golden-trace recording) are unavailable in
        this mode.
    verify:
        Attach the :mod:`repro.verify` invariant monitors
        (:class:`~repro.verify.invariants.VerificationHarness`): after
        every applied decision and processed event the full set of runtime
        invariants (container conservation, capacity/concurrency bounds,
        pool-index consistency, volume pairing, clock monotonicity, TTL
        ordering) is re-asserted, raising
        :class:`~repro.verify.invariants.InvariantViolation` on the first
        breach.  Off by default; when off the simulator holds no harness
        and the hooks cost one ``is None`` test per event.
    """

    pool_capacity_mb: float
    cost_model: StartupCostModel = field(default_factory=StartupCostModel)
    n_workers: int = 4
    delta_pricing: bool = False
    per_worker_pools: bool = False
    faults: "FaultConfig" = field(default_factory=lambda: FaultConfig())
    trace: bool = False
    worker_concurrency: Optional[int] = None
    worker_capacity_mb: Optional[float] = None
    bounded_telemetry: bool = False
    verify: bool = False

    def __post_init__(self) -> None:
        if self.worker_concurrency is not None and self.worker_concurrency < 1:
            raise ValueError("worker_concurrency must be >= 1")
        if self.worker_capacity_mb is not None and self.worker_capacity_mb <= 0:
            raise ValueError("worker_capacity_mb must be positive")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    workload_name: str
    scheduler_name: str
    pool_capacity_mb: float
    telemetry: Telemetry

    def summary(self) -> Dict[str, float]:
        """Scalar summary of the run's telemetry."""
        return self.telemetry.summary()


class ClusterSimulator:
    """The event-driven serverless platform (policy driver layer)."""

    def __init__(
        self,
        config: SimulationConfig,
        eviction_policy: EvictionPolicy | None = None,
    ) -> None:
        self.config = config
        self.eviction = eviction_policy or LRUEviction()
        # Deferred import: repro.verify depends on this module.
        if config.verify:
            from repro.verify.invariants import VerificationHarness

            self.verifier: Optional[VerificationHarness] = VerificationHarness()
        else:
            self.verifier = None
        self.pool = PoolSet(
            config.pool_capacity_mb,
            n_shards=config.n_workers if config.per_worker_pools else 1,
        )
        if config.bounded_telemetry:
            from repro.cluster.telemetry import BoundedTelemetry

            self.telemetry: Telemetry = BoundedTelemetry(
                trace_enabled=config.trace,
                queueing_enabled=config.worker_concurrency is not None,
                worker_slots=config.worker_concurrency or 1,
            )
        else:
            self.telemetry = Telemetry(
                trace_enabled=config.trace,
                queueing_enabled=config.worker_concurrency is not None,
                worker_slots=config.worker_concurrency or 1,
            )
        self.workers = WorkerSet(config.n_workers)
        self.placement = PlacementEngine(
            self.workers,
            concurrency_limit=config.worker_concurrency,
            worker_capacity_mb=config.worker_capacity_mb,
        )
        self.lifecycle = ContainerLifecycle(
            pool=self.pool,
            eviction=self.eviction,
            telemetry=self.telemetry,
            placement=self.placement,
            faults=config.faults,
            per_worker_pools=config.per_worker_pools,
            monitor=self.verifier,
        )
        self.loop = EventLoop(
            sweep=self.lifecycle.expire_ttl,
            observer=(
                self.verifier.observe_loop if self.verifier is not None else None
            ),
        )
        self._pending: Optional[Invocation] = None
        self._arrival_source: Optional[Iterator[Invocation]] = None
        self._last_arrival_t = 0.0
        self._workload_name = "<none>"
        self._finished = False
        if self.verifier is not None:
            self.verifier.attach(self)

    # ------------------------------------------------------------------
    # Convenience views over the layers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (owned by the event loop's clock)."""
        return self.loop.now

    @property
    def volume_store(self) -> VolumeStore:
        """The lifecycle layer's volume store."""
        return self.lifecycle.volume_store

    @property
    def cleaner(self) -> ContainerCleaner:
        """The lifecycle layer's container cleaner."""
        return self.lifecycle.cleaner

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------
    def run(self, workload: Workload, scheduler: Scheduler) -> SimulationResult:
        """Simulate ``workload`` end-to-end under ``scheduler``.

        Uses the columnar telemetry ingest path: per-invocation outcomes go
        straight into the column buffers without materializing an
        :class:`InvocationRecord` per event (the discarded return value of
        :meth:`apply_decision`).  The recorded rows are identical either
        way -- the ``batch_vs_incremental`` differential oracle holds both
        modes to that.
        """
        self.load(workload)
        while True:
            ctx = self.next_decision_point()
            if ctx is None:
                break
            self._apply(scheduler.decide(ctx), want_record=False)
        self._fold_scheduler_counters(scheduler)
        return self.finish(scheduler_name=scheduler.name)

    def _fold_scheduler_counters(self, scheduler: Scheduler) -> None:
        """Copy a policy's surrogate-audit counters into telemetry.

        Schedulers have no telemetry handle inside ``decide``, so policies
        that serve from a distilled surrogate (see
        ``MLCRScheduler.attach_surrogate``) count audits locally; the run
        drivers fold the totals in here once the decision loop ends.
        """
        audits = getattr(scheduler, "surrogate_audits", 0)
        if audits:
            self.telemetry.record_surrogate_audit(
                audits, getattr(scheduler, "surrogate_disagreements", 0)
            )

    # ------------------------------------------------------------------
    # Streaming mode
    # ------------------------------------------------------------------
    def run_stream(
        self, stream: Iterable[Invocation], scheduler: Scheduler
    ) -> SimulationResult:
        """Simulate a lazy invocation stream end-to-end under ``scheduler``.

        Equivalent to :meth:`run` on the materialized workload -- same
        decisions, same telemetry rows, same summary -- but arrivals are
        pulled from ``stream`` one at a time, so the event queue never
        holds more than one future arrival and memory stays O(in-flight
        containers) regardless of trace length.  Combine with
        ``SimulationConfig(bounded_telemetry=True)`` to keep the telemetry
        side O(1) as well.
        """
        self.load_stream(stream)
        while True:
            ctx = self.next_decision_point()
            if ctx is None:
                break
            self._apply(scheduler.decide(ctx), want_record=False)
        self._fold_scheduler_counters(scheduler)
        return self.finish(scheduler_name=scheduler.name)

    def load_stream(self, stream: Iterable[Invocation]) -> None:
        """Attach a lazy arrival source and schedule its first arrival.

        The remaining arrivals are pulled one at a time as the simulation
        progresses (each popped arrival primes the next).  The stream must
        yield invocations in non-decreasing ``arrival_time`` order;
        :meth:`_prime_next_arrival` raises ``ValueError`` otherwise, since
        a late-discovered earlier arrival could no longer be scheduled in
        the past.
        """
        if self._finished:
            raise RuntimeError("simulator already finished; build a new one")
        if self._arrival_source is not None:
            raise RuntimeError("an arrival stream is already attached")
        self._workload_name = getattr(stream, "name", "<stream>")
        self._arrival_source = iter(stream)
        self._prime_next_arrival()

    def _prime_next_arrival(self) -> None:
        """Schedule the next arrival from the attached stream, if any."""
        source = self._arrival_source
        if source is None:
            return
        inv = next(source, None)
        if inv is None:
            self._arrival_source = None
            return
        if inv.arrival_time < self._last_arrival_t:
            raise ValueError(
                "arrival stream is not sorted: got t="
                f"{inv.arrival_time:.6f} after t={self._last_arrival_t:.6f}"
            )
        self._last_arrival_t = inv.arrival_time
        self.loop.schedule(inv.arrival_time, EventKind.ARRIVAL, inv)

    # ------------------------------------------------------------------
    # Incremental mode (used by the DRL environment)
    # ------------------------------------------------------------------
    def load(self, workload: Workload) -> None:
        """Queue every arrival of ``workload``; resets nothing else."""
        if self._finished:
            raise RuntimeError("simulator already finished; build a new one")
        self._workload_name = workload.name
        for inv in workload:
            self.loop.schedule(inv.arrival_time, EventKind.ARRIVAL, inv)

    def prewarm(self, image, owner_name: str = "prewarm") -> Container:
        """Provision an idle warm container before (or between) arrivals.

        Implements proactive pre-warming (Shahrad et al.) and zygote
        provisioning (Li et al.): the container appears in the pool
        immediately and consumes pool capacity; the eviction policy makes
        room if needed.  When the container lands in the pool the warm
        memory is sampled (``telemetry.sample_memory``) so prewarm
        experiments get accurate pool-occupancy traces.  Routed through
        :meth:`ContainerLifecycle.prewarm`, so the pre-warm accounting
        counters (issued / reused / wasted) cover zygote provisioning too.
        """
        container = self.lifecycle.prewarm(image, owner_name, self.loop.now)
        if self.verifier is not None:
            self.verifier.checkpoint()
        return container

    # ------------------------------------------------------------------
    # Online feed (used by the serving plane)
    # ------------------------------------------------------------------
    def offer(self, invocation: Invocation) -> None:
        """Inject a single arrival into the event loop (online feed).

        The serving plane (:mod:`repro.serve`) stamps each incoming request
        with a wall-relative arrival time and offers it here one at a time;
        :meth:`next_decision_point` then processes every due completion and
        returns the request's scheduling context exactly as the offline
        modes would.  Arrival times must be non-decreasing across calls
        (and across any stream fed via :meth:`load_stream`), mirroring the
        streaming feed's ordering contract.
        """
        if self._finished:
            raise RuntimeError("simulator already finished; build a new one")
        if invocation.arrival_time < self._last_arrival_t:
            raise ValueError(
                "arrival offered out of order: got t="
                f"{invocation.arrival_time:.6f} after "
                f"t={self._last_arrival_t:.6f}"
            )
        self._last_arrival_t = invocation.arrival_time
        self.loop.schedule(invocation.arrival_time, EventKind.ARRIVAL,
                           invocation)

    def pump_until(self, time: float) -> int:
        """Process every due non-arrival event, then sweep at ``time``.

        The serving plane's janitor calls this on a timer: completions
        whose scheduled time has passed are handled exactly as the offline
        loop would handle them (each pop advances the clock and runs the
        TTL sweep), and the trailing :meth:`~EventLoop.advance_to` runs one
        more sweep at ``time`` so idle containers expire -- and the pool
        scales to zero -- even when no event is due.  Returns the number of
        events processed.  Raises if an undecided arrival is due (arrivals
        must go through :meth:`next_decision_point`).
        """
        if self._pending is not None:
            raise RuntimeError("pending decision not applied")
        handled = 0
        while (event := self.loop.peek()) is not None and event.time <= time:
            if event.kind is EventKind.ARRIVAL:
                raise RuntimeError(
                    "pump_until reached an undecided arrival; drive it "
                    "through next_decision_point/apply_decision"
                )
            self._handle_non_arrival(self.loop.pop_next())
            handled += 1
        self.loop.advance_to(time)
        if self.verifier is not None:
            self.verifier.checkpoint()
        return handled

    def next_decision_point(self) -> Optional[SchedulingContext]:
        """Advance until the next arrival; return its scheduling context.

        Completion events between arrivals are processed internally.
        Returns ``None`` once all arrivals have been handled.
        """
        if self._pending is not None:
            raise RuntimeError("previous decision not applied yet")
        while (event := self.loop.pop_next()) is not None:
            if event.kind is EventKind.ARRIVAL:
                self._pending = event.payload
                # Streaming feed: replace the consumed arrival with the
                # stream's next one before any decision is taken, so the
                # queue again holds exactly one future arrival.
                self._prime_next_arrival()
                return self._context_for(self._pending)
            self._handle_non_arrival(event)
        return None

    def apply_decision(self, decision: Decision) -> InvocationRecord:
        """Execute a scheduling decision for the pending invocation.

        A rejected decision (:class:`InvalidDecisionError`) leaves the
        pending invocation in place, so the caller can retry with a valid
        decision instead of silently losing the arrival.
        """
        return self._apply(decision, want_record=True)

    def _apply(
        self, decision: Decision, want_record: bool
    ) -> Optional[InvocationRecord]:
        """Shared decision executor; builds the row view only on request."""
        if self._pending is None:
            raise RuntimeError("no pending invocation; call next_decision_point")
        invocation = self._pending
        spec = invocation.spec
        now = self.loop.now

        if decision.is_cold:
            container = self.lifecycle.create(spec.image, spec.name, now)
            match = MatchLevel.NO_MATCH
            old_image = spec.image
        else:
            # claim() validates before mutating: an InvalidDecisionError
            # propagates with self._pending intact.
            container = self.lifecycle.claim(
                decision.container_id, invocation, now
            )
            old_image = container.image
            # Zygote-style reuse keeps the container's own (superset) image;
            # the cleaner then only swaps the user-data volume.
            target_image = (
                container.image if decision.preserve_image else spec.image
            )
            result = self.lifecycle.repack(container, target_image, spec.name)
            match = (
                match_level(spec.image, container.image)
                if decision.preserve_image
                else result.match
            )
        self._pending = None
        self.telemetry.sample_live_memory(self.lifecycle.live_memory_mb)

        if not decision.is_cold and self.config.delta_pricing:
            breakdown = self.config.cost_model.delta_breakdown(
                spec.image, old_image, spec.function_init_s
            )
        else:
            breakdown = self.config.cost_model.breakdown(
                spec.image, match, spec.function_init_s
            )
        if self.lifecycle.faults_enabled:
            breakdown, straggled = self.lifecycle.perturb_breakdown(breakdown)
            if straggled:
                self.telemetry.record_straggler()
        service_s = breakdown.total_s
        worker_id = self.workers.worker_of(container.container_id)
        start_at, queue_delay = self.placement.admit(
            worker_id, now, service_s + invocation.execution_time_s
        )
        latency = queue_delay + service_s
        ready_at = start_at + service_s
        container.begin_startup(spec.name, now, ready_at)
        self.loop.schedule(ready_at, EventKind.STARTUP_COMPLETE,
                           (container, invocation))
        self.eviction.on_function_start(spec.name, latency,
                                        container.memory_mb, now)
        if self.telemetry.queueing_enabled:
            self.telemetry.record_queueing(queue_delay)
            self.telemetry.record_queue_depth(
                max(self.placement.queue_depths(now))
            )
            self.telemetry.record_worker_busy(
                worker_id, service_s + invocation.execution_time_s
            )
        if self.telemetry.trace_enabled:
            # Guarded so the detail string is only formatted when tracing.
            self.telemetry.record_event(
                now,
                "cold_start" if decision.is_cold else f"warm_{match.name}",
                container.container_id,
                spec.name,
                f"latency={latency:.3f}s",
            )
        self.telemetry.record_invocation_values(
            invocation.invocation_id,
            spec.name,
            invocation.arrival_time,
            container.container_id,
            decision.is_cold,
            int(match),
            latency,
            breakdown.create_s,
            breakdown.pull_s,
            breakdown.install_s,
            breakdown.runtime_init_s,
            breakdown.function_init_s,
            breakdown.clean_s,
            invocation.execution_time_s,
            queue_delay,
            worker_id,
        )
        # Proactive actions attached by MPC/lending policies execute right
        # after the decision itself, in every driving mode (batch, stream,
        # incremental, online serve), keeping the modes decision-identical.
        for action in decision.actions:
            if isinstance(action, PrewarmRequest):
                self.lifecycle.prewarm(action.image, action.function_name,
                                       now)
            else:
                self.lifecycle.lend(action.container_id, action.image,
                                    action.function_name, now)
        if self.verifier is not None:
            self.verifier.checkpoint()
        if not want_record:
            return None
        return InvocationRecord(
            invocation_id=invocation.invocation_id,
            function_name=spec.name,
            arrival_time=invocation.arrival_time,
            container_id=container.container_id,
            cold_start=decision.is_cold,
            match=match,
            startup_latency_s=latency,
            breakdown=breakdown,
            execution_time_s=invocation.execution_time_s,
            queue_delay_s=queue_delay,
            worker_id=worker_id,
        )

    def finish(self, scheduler_name: str = "policy") -> SimulationResult:
        """Drain remaining events and return the run result."""
        if self._pending is not None:
            raise RuntimeError("pending decision not applied")
        while (event := self.loop.pop_next()) is not None:
            if event.kind is EventKind.ARRIVAL:
                raise RuntimeError("finish() called with arrivals outstanding")
            self._handle_non_arrival(event)
        self._finished = True
        self.telemetry.duration_s = self.loop.now
        if self.verifier is not None:
            self.verifier.checkpoint()
        return SimulationResult(
            workload_name=self._workload_name,
            scheduler_name=scheduler_name,
            pool_capacity_mb=self.config.pool_capacity_mb,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _context_for(self, invocation: Invocation) -> SchedulingContext:
        now = self.loop.now
        return SchedulingContext(
            now=now,
            invocation=invocation,
            idle_containers=tuple(self.pool.lru_order()),
            cost_model=self.config.cost_model,
            pool_capacity_mb=self.pool.capacity_mb,
            pool_used_mb=self.pool.used_mb,
            pool=self.pool,
            worker_loads=self.workers.container_counts(),
            queue_depths=self.placement.queue_depths(now),
        )

    def _handle_non_arrival(self, event) -> None:
        container, invocation = event.payload
        now = self.loop.now
        if event.kind is EventKind.STARTUP_COMPLETE:
            finish_at = now + invocation.execution_time_s
            container.begin_execution(now, finish_at)
            self.loop.schedule(finish_at, EventKind.EXECUTION_COMPLETE,
                               (container, invocation))
        elif event.kind is EventKind.EXECUTION_COMPLETE:
            container.finish_execution(now)
            if self.telemetry.trace_enabled:
                self.telemetry.record_event(
                    now, "execution_complete", container.container_id,
                    container.current_function,
                )
            if self.lifecycle.faults_enabled and self.lifecycle.should_crash():
                self.lifecycle.destroy(container)
                self.telemetry.record_crash()
                if self.telemetry.trace_enabled:
                    self.telemetry.record_event(
                        now, "crash", container.container_id,
                        container.current_function,
                    )
            else:
                self.lifecycle.keep_alive(container, now)
        else:  # pragma: no cover - exhaustive enum
            raise RuntimeError(f"unhandled event kind {event.kind}")
        if self.verifier is not None:
            self.verifier.checkpoint()
