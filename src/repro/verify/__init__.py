"""Verification subsystem: invariant monitors, golden traces, differentials.

Three pillars keep the simulator's correctness claims true permanently
instead of per-PR:

* :mod:`repro.verify.invariants` -- pluggable runtime
  :class:`~repro.verify.invariants.InvariantMonitor` objects hooked into
  the event loop, the container lifecycle and the placement engine
  (enabled via ``SimulationConfig.verify``; zero-cost when disabled) that
  continuously assert container conservation, capacity and concurrency
  bounds, pool-index consistency, volume mount/unmount pairing, clock
  monotonicity and TTL-expiry ordering;
* :mod:`repro.verify.trace` -- a compact versioned JSONL trace of every
  scheduling decision, with record / replay / diff primitives (exposed as
  the ``repro trace`` CLI) and checked-in golden traces that turn any
  behavioural drift into a structured first-divergence report;
* :mod:`repro.verify.differential` -- a differential oracle harness that
  cross-checks every equivalence pair the codebase promises (batch vs
  incremental driving, global vs sharded pools, fused vs unfused QKV,
  float32 vs float64 serving, sequential vs batched rollouts, serial vs
  parallel experiment grids).

``tools/verify_capture.py`` runs all three pillars as a one-command local
gate alongside ``tools/bench_capture.py``.
"""

from repro.verify.invariants import (
    CapacityMonitor,
    ClockMonitor,
    ConservationMonitor,
    InvariantMonitor,
    InvariantViolation,
    PoolIndexMonitor,
    TTLMonitor,
    VerificationHarness,
    VolumeMonitor,
)
from repro.verify.trace import (
    TRACE_FORMAT_VERSION,
    Trace,
    TraceDivergence,
    TraceHeader,
    TraceLine,
    TraceSpec,
    diff_traces,
    read_trace,
    record_trace,
    replay_trace,
    write_trace,
)
from repro.verify.differential import ORACLES, OracleResult, run_oracles

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "VerificationHarness",
    "ConservationMonitor",
    "CapacityMonitor",
    "PoolIndexMonitor",
    "VolumeMonitor",
    "ClockMonitor",
    "TTLMonitor",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceHeader",
    "TraceLine",
    "TraceSpec",
    "TraceDivergence",
    "record_trace",
    "replay_trace",
    "read_trace",
    "write_trace",
    "diff_traces",
    "ORACLES",
    "OracleResult",
    "run_oracles",
]
