"""Differential oracle harness: cross-check every promised equivalence.

The codebase carries a set of "fast path equals reference path" claims
accumulated over the performance PRs.  Each claim here becomes a named
*oracle* -- a self-contained check that runs both sides and compares
outcomes:

=========================  ==============================================
oracle                     equivalence checked
=========================  ==============================================
batch_vs_incremental       ``ClusterSimulator.run`` == ``load`` /
                           ``next_decision_point`` / ``apply_decision`` /
                           ``finish`` (identical per-invocation records)
global_vs_sharded          ``per_worker_pools`` on/off at unbounded
                           capacity (identical telemetry summary)
jobs_serial_vs_parallel    ``run_grid(jobs=1)`` == ``run_grid(jobs=2)``
                           (identical cell summaries)
fused_vs_unfused_qkv       fused ``(D, 3D)`` QKV projection == textbook
                           three-projection attention forward
v1_float64_vs_float32      a v1 (unfused float64) checkpoint served in
                           float64 picks the same greedy actions as its
                           float32 cast
sequential_vs_batched      ``MLCRTrainer.rollout`` with
                           ``batched_rollouts`` on/off (identical
                           outcomes and replay-buffer fill)
cached_vs_fresh            ``run_grid`` without a cache == with a cold
                           cache == with a warm cache (identical cell
                           summaries and report bytes; warm run is all
                           hits)
streaming_vs_materialized  ``ClusterSimulator.run_stream`` over a lazy
                           arrival stream == ``run`` over the
                           materialized workload (identical summaries
                           and per-invocation columns, for both a
                           wrapped FStartBench list and a chunk-
                           synthesized Azure stream), and chunked
                           ``run_stream_lanes`` == bounded-telemetry
                           ``run_stream`` for every registry scheduler
                           (byte-equal summaries)
serve_replay               a recorded ``repro.serve`` session (wall-
                           stamped arrivals, janitor pumps between
                           requests, a scheduler hot-swap) replayed
                           through a fresh engine makes byte-identical
                           decisions
lanes_vs_sequential        ``run_grid(lanes=8)`` lane-kernel cells ==
                           sequential cells for every scheduler in the
                           experiment registry (derived, not hardcoded;
                           byte-identical summaries, proactive pre-warm
                           / lending blocks included)
surrogate_vs_network       the distilled decision tree reproduces >= 99%
                           of the network's greedy actions on the
                           distillation trajectory, and mask-invalid
                           predictions fall back to the network
mpc_forecast_off           ``MPCScheduler(forecast=False)`` ==
                           ``KeepAliveScheduler`` (bit-identical
                           summaries and per-invocation columns: the
                           proactive half must be a pure overlay)
lend_budget_zero           ``PagurusLendingScheduler(lend_budget=0)`` ==
                           ``GreedyMatchScheduler`` (bit-identical
                           summaries and per-invocation columns)
offline_deterministic      ``fit_from_traces`` is shard-order
                           independent (bit-identical Q tables) and a
                           fitted :class:`OfflineQScheduler` replays a
                           fixed workload to bit-identical summaries
=========================  ==============================================

Runnable as the ``tests/test_verify_differential.py`` pytest suite and as
part of the standalone ``tools/verify_capture.py`` gate via
:func:`run_oracles`.
"""

from __future__ import annotations

import json
import math
import tempfile
import traceback
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.core.config import MLCRConfig
from repro.core.env import SchedulingEnv
from repro.core.mlcr import train_mlcr_scheduler
from repro.core.state import StateEncoder
from repro.core.trainer import EVAL_EPISODE_BASE, MLCRTrainer
from repro.drl.dqn import DQNConfig, masked_argmax
from repro.experiments.cache import ExperimentCache
from repro.experiments.parallel import GridResult, GridTask, run_grid
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.workloads.fstartbench import build_workload
from repro.workloads.functions import function_by_id
from repro.workloads.workload import Invocation, Workload

_REL_TOL = 1e-6


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one differential oracle."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "DIVERGED"
        suffix = f" -- {self.detail}" if self.detail else ""
        return f"{self.name}: {status}{suffix}"


# ---------------------------------------------------------------------------
# Shared fixtures (self-contained: no test-suite imports)
# ---------------------------------------------------------------------------

def tiny_workload(seed: int = 0, n: int = 12) -> Workload:
    """A 12-invocation workload over two Table-II functions."""
    rng = np.random.default_rng(seed)
    specs = (function_by_id(1), function_by_id(4))
    invocations = [
        Invocation(
            invocation_id=i,
            spec=specs[i % 2],
            arrival_time=float(rng.uniform(0, 30)),
            execution_time_s=0.5,
        )
        for i in range(n)
    ]
    return Workload.from_invocations(f"diff-tiny{seed}", invocations)


def tiny_mlcr_config(**overrides) -> MLCRConfig:
    """A seconds-scale MLCR budget for the DRL oracles."""
    defaults = dict(
        n_slots=4,
        model_dim=8,
        head_hidden=8,
        n_episodes=2,
        demo_episodes=2,
        eval_every=2,
        eval_episodes=2,
        epsilon_decay_steps=50,
        dqn=DQNConfig(batch_size=4, buffer_capacity=256,
                      target_sync_every=10),
    )
    defaults.update(overrides)
    return MLCRConfig(**defaults)


def tiny_env() -> SchedulingEnv:
    """A small scheduling environment over :func:`tiny_workload` episodes."""
    return SchedulingEnv(
        workload_factory=lambda ep: tiny_workload(seed=ep % 3),
        sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
        encoder=StateEncoder(n_slots=4),
    )


def _summaries_equal(a: Dict[str, float], b: Dict[str, float]) -> Optional[str]:
    """First differing summary key, or ``None`` when equal."""
    if a.keys() != b.keys():
        return f"summary keys differ: {sorted(a)} vs {sorted(b)}"
    for key in a:
        va, vb = a[key], b[key]
        same = (
            math.isclose(va, vb, rel_tol=_REL_TOL, abs_tol=1e-9)
            if isinstance(va, float) or isinstance(vb, float)
            else va == vb
        )
        if not same:
            return f"summary[{key!r}]: {va!r} vs {vb!r}"
    return None


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------

def oracle_batch_vs_incremental() -> OracleResult:
    """Batch ``run()`` and the incremental API yield identical records."""
    name = "batch_vs_incremental"
    workload = build_workload("LO-Sim", seed=0)
    capacity = 2000.0

    batch_sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=capacity))
    batch = batch_sim.run(workload, GreedyMatchScheduler())

    inc_sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=capacity))
    scheduler = GreedyMatchScheduler()
    inc_sim.load(workload)
    while (ctx := inc_sim.next_decision_point()) is not None:
        inc_sim.apply_decision(scheduler.decide(ctx))
    incremental = inc_sim.finish(scheduler_name=scheduler.name)

    want = batch.telemetry.records
    got = incremental.telemetry.records
    if len(want) != len(got):
        return OracleResult(
            name, False, f"record counts differ: {len(want)} vs {len(got)}"
        )
    for i, (a, b) in enumerate(zip(want, got)):
        if a != b:
            return OracleResult(name, False, f"records diverge at event {i}: "
                                             f"{a} vs {b}")
    mismatch = _summaries_equal(batch.summary(), incremental.summary())
    if mismatch:
        return OracleResult(name, False, mismatch)
    return OracleResult(name, True, f"{len(want)} records identical")


def oracle_global_vs_sharded() -> OracleResult:
    """Global and per-worker pools agree at unbounded capacity."""
    name = "global_vs_sharded"
    workload = build_workload("LO-Sim", seed=0)

    def summary(per_worker: bool) -> Dict[str, float]:
        sim = ClusterSimulator(SimulationConfig(
            pool_capacity_mb=float("inf"), per_worker_pools=per_worker,
        ))
        return sim.run(workload, GreedyMatchScheduler()).summary()

    mismatch = _summaries_equal(summary(False), summary(True))
    if mismatch:
        return OracleResult(name, False, mismatch)
    return OracleResult(name, True, "summaries identical")


def oracle_jobs_serial_vs_parallel() -> OracleResult:
    """``run_grid`` is byte-identical for jobs=1 and jobs=2."""
    name = "jobs_serial_vs_parallel"
    tasks = [
        GridTask(scheduler=key, workload="LO-Sim", seed=0,
                 pool_label="Fixed", capacity_mb=2000.0)
        for key in ("lru", "greedy", "keepalive")
    ]
    serial = run_grid(tasks, jobs=1)
    parallel = run_grid(tasks, jobs=2)
    for i, (a, b) in enumerate(zip(serial, parallel)):
        if a.method != b.method:
            return OracleResult(name, False,
                                f"cell {i} method: {a.method} vs {b.method}")
        if a.summary != b.summary:
            return OracleResult(name, False, f"cell {i} summaries differ")
    return OracleResult(name, True, f"{len(tasks)} cells identical")


def oracle_fused_vs_unfused_qkv() -> OracleResult:
    """The fused QKV projection computes the textbook unfused attention."""
    from repro.drl.attention import MultiHeadAttention, _softmax

    name = "fused_vs_unfused_qkv"
    mha = MultiHeadAttention(model_dim=8, n_heads=2,
                             rng=np.random.default_rng(11))
    x = np.random.default_rng(1).normal(size=(2, 5, 8))
    d = mha.model_dim
    w = mha.w_qkv.value
    b = mha.b_qkv.value

    def split(t: np.ndarray) -> np.ndarray:
        bs, n, _ = t.shape
        return t.reshape(bs, n, mha.n_heads, mha.head_dim).transpose(0, 2, 1, 3)

    q = split(x @ w[:, :d] + b[:d])
    k = split(x @ w[:, d:2 * d] + b[d:2 * d])
    v = split(x @ w[:, 2 * d:] + b[2 * d:])
    scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(mha.head_dim)
    context = _softmax(scores, axis=-1) @ v
    context = context.transpose(0, 2, 1, 3).reshape(2, 5, d)
    expected = context @ mha.w_o.weight.value + mha.w_o.bias.value

    got = mha.forward(x)
    max_err = float(np.abs(got - expected).max())
    if max_err > 1e-12:
        return OracleResult(name, False, f"max |fused - unfused| = {max_err:g}")
    return OracleResult(name, True, f"max error {max_err:g}")


def _write_v1_checkpoint(scheduler, cfg: MLCRConfig, path: Path) -> Path:
    """Save in the historical format: unfused QKV params, no dtype field."""
    meta = {
        "format_version": 1,
        "n_slots": scheduler.encoder.n_slots,
        "mask_dominated": scheduler.encoder.mask_dominated,
        "use_mask": scheduler.use_mask,
        "config": {
            "n_slots": cfg.n_slots,
            "model_dim": cfg.model_dim,
            "n_heads": cfg.n_heads,
            "n_blocks": cfg.n_blocks,
            "head_hidden": cfg.head_hidden,
            "use_attention": cfg.use_attention,
            "use_dueling": cfg.use_dueling,
            "seed": cfg.seed,
        },
    }
    old: List[np.ndarray] = []
    params = scheduler.agent.online.parameters()
    i = 0
    while i < len(params):
        p = params[i]
        if p.name.endswith(".qkv.weight"):
            bias = params[i + 1]
            d = p.value.shape[0]
            for j in range(3):
                old.append(p.value[:, d * j:d * (j + 1)].copy())
                old.append(bias.value[d * j:d * (j + 1)].copy())
            i += 2
        else:
            old.append(p.value.copy())
            i += 1
    arrays = {f"param_{j}": t for j, t in enumerate(old)}
    np.savez(path, _meta=np.array(json.dumps(meta)), **arrays)
    return path


def oracle_v1_float64_vs_float32() -> OracleResult:
    """A v1 checkpoint's float64 serve and its float32 cast pick the same
    greedy actions."""
    from repro.core.persistence import load_scheduler

    name = "v1_float64_vs_float32"
    cfg = tiny_mlcr_config(dtype="float64", demo_episodes=1, eval_episodes=1)
    scheduler, _ = train_mlcr_scheduler(
        workload_factory=lambda ep: tiny_workload(seed=ep % 2),
        sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
        config=cfg,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = _write_v1_checkpoint(scheduler, cfg, Path(tmp) / "v1.npz")
        served64 = load_scheduler(path)
    net64 = served64.agent.online
    if net64.dtype != np.dtype("float64"):
        return OracleResult(
            name, False, f"v1 checkpoint served as {net64.dtype}, not float64"
        )

    # Cast the served network to float32 and compare greedy decisions.
    trainer32 = MLCRTrainer(tiny_env(), replace(cfg, dtype="float32"))
    net32 = trainer32.agent.online
    net32.load_state_dict({
        key: value.astype(np.float32)
        for key, value in net64.state_dict().items()
    })
    rng = np.random.default_rng(17)
    states = rng.normal(size=(64, net64.state_dim))
    masks = rng.random((64, net64.action_dim)) < 0.7
    masks[:, -1] = True  # cold start always valid
    with net64.inference(), net32.inference():
        q64 = net64.forward(states)
        q32 = net32.forward(states)
    a64 = masked_argmax(q64, masks)
    a32 = masked_argmax(q32.astype(np.float64), masks)
    diverged = int((a64 != a32).sum())
    if diverged:
        return OracleResult(
            name, False, f"{diverged}/64 greedy decisions differ"
        )
    return OracleResult(name, True, "64/64 greedy decisions identical")


def oracle_sequential_vs_batched() -> OracleResult:
    """``MLCRTrainer.rollout`` agrees across the ``batched_rollouts`` knob."""
    name = "sequential_vs_batched"
    kinds = ["greedy", "exact", "eval", "eval"]
    episodes = [0, 1, EVAL_EPISODE_BASE, EVAL_EPISODE_BASE + 1]

    outcomes = {}
    trainers = {}
    for batched in (True, False):
        cfg = tiny_mlcr_config(batched_rollouts=batched)
        trainer = MLCRTrainer(tiny_env(), cfg)
        outcomes[batched] = trainer.rollout(kinds, episodes)
        trainers[batched] = trainer

    for i, (got, want) in enumerate(zip(outcomes[True], outcomes[False])):
        (g_ret, g_lat, g_cold), (w_ret, w_lat, w_cold) = got, want
        if (
            not math.isclose(g_ret, w_ret, rel_tol=_REL_TOL, abs_tol=1e-9)
            or not math.isclose(g_lat, w_lat, rel_tol=_REL_TOL, abs_tol=1e-9)
            or g_cold != w_cold
        ):
            return OracleResult(
                name, False,
                f"episode {i} ({kinds[i]}): batched {got} vs sequential {want}"
            )
    fill = (len(trainers[True].agent.buffer), len(trainers[False].agent.buffer))
    if fill[0] != fill[1]:
        return OracleResult(
            name, False, f"replay fill differs: {fill[0]} vs {fill[1]}"
        )
    steps = (trainers[True]._global_step, trainers[False]._global_step)
    if steps[0] != steps[1]:
        return OracleResult(
            name, False, f"global step differs: {steps[0]} vs {steps[1]}"
        )
    return OracleResult(
        name, True,
        f"{len(kinds)} episodes identical, replay fill {fill[0]}"
    )


def oracle_cached_vs_fresh() -> OracleResult:
    """Grid cells and reports are bit-identical fresh, cold- and
    warm-cached."""
    name = "cached_vs_fresh"
    tasks = [
        GridTask(scheduler=key, workload="LO-Sim", seed=seed,
                 pool_label="Fixed", capacity_mb=2000.0)
        for key in ("lru", "greedy")
        for seed in (0, 1)
    ]
    fresh = run_grid(tasks, jobs=1)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ExperimentCache(root=Path(tmp), enabled=True)
        cold = run_grid(tasks, jobs=1, cache=cache)
        cold_misses = cache.misses
        warm = run_grid(tasks, jobs=1, cache=cache)
        warm_hits = cache.hits
    if cold_misses != len(tasks):
        return OracleResult(
            name, False, f"cold run: {cold_misses} misses, "
                         f"expected {len(tasks)}"
        )
    if warm_hits != len(tasks):
        return OracleResult(
            name, False, f"warm run: {warm_hits} hits, expected {len(tasks)}"
        )
    for label, cells in (("cold", cold), ("warm", warm)):
        for i, (a, b) in enumerate(zip(fresh, cells)):
            if a.method != b.method or a.summary != b.summary:
                return OracleResult(
                    name, False, f"{label} cell {i} differs from fresh"
                )
    reports = {label: GridResult(cells=cells).report()
               for label, cells in (("fresh", fresh), ("cold", cold),
                                    ("warm", warm))}
    if len(set(reports.values())) != 1:
        return OracleResult(name, False, "rendered reports differ")
    return OracleResult(
        name, True,
        f"{len(tasks)} cells identical fresh/cold/warm, report bytes equal"
    )


def oracle_streaming_vs_materialized() -> OracleResult:
    """``run_stream`` and ``run`` agree record-for-record.

    Covers both stream sources: an FStartBench workload wrapped by
    :func:`~repro.workloads.stream.stream_from_workload` (pure feed-path
    check) and a chunk-synthesized
    :meth:`~repro.workloads.azure.AzureTraceGenerator.stream` against its
    own materialized ``generate()`` (feed path plus arrival synthesis),
    each under two schedulers.  A third leg pins the chunked streaming
    *lane* lowering: :func:`~repro.cluster.lanes.run_stream_lanes` over
    the Azure stream must be byte-equal (exact ``==``) to the sequential
    bounded-telemetry ``run_stream`` for every scheduler in the
    experiment registry.
    """
    from repro.schedulers.lru import LRUScheduler
    from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator
    from repro.workloads.stream import stream_from_workload

    name = "streaming_vs_materialized"
    azure = AzureTraceGenerator(AzureTraceConfig(
        n_functions=20, n_invocations=400, duration_s=240.0,
    ))
    pairs = [
        ("LO-Sim", build_workload("LO-Sim", seed=0),
         lambda wl=None: stream_from_workload(wl)),
        ("Azure", azure.generate(seed=0), lambda wl=None: azure.stream(seed=0)),
    ]
    schedulers = [GreedyMatchScheduler, LRUScheduler]
    checked = 0
    for label, workload, make_stream in pairs:
        for scheduler_cls in schedulers:
            batch_sim = ClusterSimulator(
                SimulationConfig(pool_capacity_mb=2000.0)
            )
            batch = batch_sim.run(workload, scheduler_cls())
            stream_sim = ClusterSimulator(
                SimulationConfig(pool_capacity_mb=2000.0)
            )
            streamed = stream_sim.run_stream(
                make_stream(workload), scheduler_cls()
            )
            mismatch = _summaries_equal(batch.summary(), streamed.summary())
            if mismatch:
                return OracleResult(
                    name, False,
                    f"{label}/{scheduler_cls.__name__}: {mismatch}",
                )
            want = batch_sim.telemetry.invocation_columns()
            got = stream_sim.telemetry.invocation_columns()
            for fld in want._fields:
                a, b = list(getattr(want, fld)), list(getattr(got, fld))
                if a != b:
                    return OracleResult(
                        name, False,
                        f"{label}/{scheduler_cls.__name__}: "
                        f"column {fld!r} diverges",
                    )
            checked += len(want.invocation_id)

    # Third leg: chunked streaming *lane* replay.  Every registry
    # scheduler replays the Azure stream once through the sequential
    # bounded-telemetry ``run_stream`` and once through
    # ``run_stream_lanes`` (all lanes sharing one chunked lowering);
    # summaries must be byte-equal.
    from repro.cluster.lanes import run_stream_lanes
    from repro.experiments.parallel import SCHEDULER_FACTORIES, build_scheduler

    capacity_mb = 2000.0
    lane_cells = [(key, capacity_mb) for key in SCHEDULER_FACTORIES]
    lane_results = run_stream_lanes(
        lane_cells, azure.stream(seed=0), chunk_size=64
    )
    for (key, _cap), lane in zip(lane_cells, lane_results):
        scheduler = build_scheduler(key)
        eviction = (
            scheduler.make_eviction_policy()
            if hasattr(scheduler, "make_eviction_policy") else None
        )
        stream_sim = ClusterSimulator(
            SimulationConfig(
                pool_capacity_mb=capacity_mb, bounded_telemetry=True,
            ),
            eviction,
        )
        streamed = stream_sim.run_stream(azure.stream(seed=0), scheduler)
        if lane.method != streamed.scheduler_name:
            return OracleResult(
                name, False,
                f"stream-lane {key}: method {lane.method!r} vs "
                f"{streamed.scheduler_name!r}",
            )
        want_summary = streamed.summary()
        if list(want_summary.items()) != list(lane.summary.items()):
            diff = [k for k in want_summary
                    if want_summary[k] != lane.summary.get(k)]
            return OracleResult(
                name, False,
                f"stream-lane {key}: summaries differ at {diff}",
            )
    return OracleResult(
        name, True,
        f"{checked} records identical across "
        f"{len(pairs)}x{len(schedulers)} runs; "
        f"{len(lane_cells)} stream-lane summaries byte-equal",
    )


def oracle_serve_replay() -> OracleResult:
    """A served session's decisions equal their deterministic replay.

    Drives a :class:`~repro.serve.engine.ServeEngine` headlessly with a
    scripted wall clock standing in for real time: bursty arrivals over
    four Table-II functions, janitor pumps between requests (including one
    long quiet period that scales the pool to zero through the keep-alive
    TTL) and a mid-session scheduler hot-swap.  The in-memory recording is
    then replayed through a fresh engine -- no janitor, no wall clock --
    and every decision field is compared, plus the two sessions' telemetry
    summaries after drain.
    """
    from repro.cluster.eventloop import VirtualClock
    from repro.serve.engine import ServeEngine
    from repro.serve.janitor import Janitor
    from repro.serve.recorder import (
        DecisionRecorder,
        read_recording,
        replay_recording,
    )

    name = "serve_replay"
    recorder = DecisionRecorder()
    wall = VirtualClock()
    config = SimulationConfig(
        pool_capacity_mb=3000.0, n_workers=3, worker_concurrency=2,
        verify=True,
    )
    engine = ServeEngine(
        config, scheduler="keepalive", wall=wall, keepalive_ttl_s=8.0,
        recorder=recorder,
    )
    janitor = Janitor(engine)
    functions = ("hello-python", "hello-java", "analytics-numpy",
                 "ml-inference")
    rng = np.random.default_rng(7)
    t = 0.0
    for i in range(48):
        # Bursty arrivals: mostly sub-second gaps, occasionally a pause
        # longer than the keep-alive TTL (forcing TTL expiry + scale to
        # zero between requests).
        t += float(rng.uniform(0.05, 0.8)) if i % 16 else 10.0
        # Janitor ticks fire between requests at wall cadence; they must
        # not change any decision.
        while wall.now + 0.5 < t:
            wall.advance_to(wall.now + 0.5)
            janitor.tick()
        wall.advance_to(t)
        engine.submit(functions[i % len(functions)])
        if i == 23:
            engine.swap_scheduler("greedy")
    served = engine.drain()

    report = replay_recording(recorder.lines(), verify=True)
    if not report.ok:
        return OracleResult(name, False, str(report.divergence))
    if report.n_decisions != 48 or report.n_swaps != 1:
        return OracleResult(
            name, False,
            f"replay covered {report.n_decisions} decisions / "
            f"{report.n_swaps} swaps, expected 48 / 1",
        )

    # Replays must also reproduce the session-level telemetry summary.
    _header, entries = read_recording(recorder.lines())
    replay_engine = ServeEngine(
        config, scheduler="keepalive", keepalive_ttl_s=8.0,
    )
    for entry in entries:
        if "swap" in entry:
            replay_engine.swap_scheduler(entry["swap"])
        else:
            replay_engine.submit(entry["fn"], exec_time_s=entry["exec"],
                                 now=entry["t"])
    replayed = replay_engine.drain()
    mismatch = _summaries_equal(served.summary(), replayed.summary())
    if mismatch:
        return OracleResult(name, False, mismatch)
    return OracleResult(
        name, True,
        "48 decisions + 1 swap byte-identical, summaries equal",
    )


def oracle_lanes_vs_sequential() -> OracleResult:
    """Lane-kernel grid cells are byte-identical to sequential ones.

    The scheduler list is derived from the *experiment registry*
    (``SCHEDULER_FACTORIES``), not a hardcoded grid, so a newly registered
    scheduler is picked up automatically -- and the oracle fails loudly if
    a registry key ever lacks a lane path (closed-form or scripted),
    because ``run_grid(lanes=...)`` no longer falls back sequentially.
    Every registry scheduler runs over two workload draws and two pool
    capacities, once through the per-cell sequential simulator and once
    through ``run_grid(lanes=8)``, comparing summaries with ``==`` (bit
    equality, not tolerance) -- the lane kernel's whole contract, the
    proactive pre-warm / lending telemetry blocks included.
    """
    from repro.cluster.lanes import lane_supported_scheduler
    from repro.experiments.parallel import SCHEDULER_FACTORIES

    name = "lanes_vs_sequential"
    unsupported = sorted(
        key for key in SCHEDULER_FACTORIES
        if not lane_supported_scheduler(key)
    )
    if unsupported:
        return OracleResult(
            name, False,
            f"registry keys without a lane path: {unsupported}",
        )
    tasks = [
        GridTask(scheduler=key, workload=workload, seed=seed,
                 pool_label="Fixed", capacity_mb=capacity)
        for key in SCHEDULER_FACTORIES
        for workload, seed in (("LO-Sim", 0), ("HI-Var", 1))
        for capacity in (800.0, 4000.0)
    ]
    sequential = run_grid(tasks, jobs=1)
    laned = run_grid(tasks, jobs=1, lanes=8)
    for i, (a, b) in enumerate(zip(sequential, laned)):
        if a.method != b.method:
            return OracleResult(
                name, False, f"cell {i} method: {a.method} vs {b.method}"
            )
        if list(a.summary.items()) != list(b.summary.items()):
            diff = [k for k in a.summary if a.summary[k] != b.summary.get(k)]
            return OracleResult(
                name, False,
                f"cell {i} ({tasks[i].scheduler}/{tasks[i].workload}) "
                f"summaries differ at {diff}",
            )
    return OracleResult(
        name, True,
        f"{len(tasks)} cells ({len(SCHEDULER_FACTORIES)} registry "
        f"schedulers) byte-identical at 8 lanes",
    )


def oracle_surrogate_vs_network() -> OracleResult:
    """The distilled tree matches the network's greedy policy >= 99 %.

    Trains a tiny MLCR policy, distills it over its own trajectory
    (:func:`~repro.drl.distill.distill_scheduler`), and checks: (a) the
    in-sample agreement bound, (b) that a simulated run with the surrogate
    attached (auditing every decision) stays within the same disagreement
    budget and folds the audit counters into the telemetry summary, and
    (c) that a mask forbidding the tree's prediction triggers the
    network-fallback path instead of an invalid action.
    """
    from repro.drl.distill import distill_scheduler

    name = "surrogate_vs_network"
    threshold = 0.99
    scheduler, _ = train_mlcr_scheduler(
        workload_factory=lambda ep: tiny_workload(seed=ep % 3),
        sim_config=SimulationConfig(pool_capacity_mb=10_000.0),
        config=tiny_mlcr_config(),
    )
    workloads = [tiny_workload(seed=s, n=24) for s in range(3)]
    surrogate, report = distill_scheduler(scheduler, workloads, 10_000.0)
    if report.agreement < threshold:
        return OracleResult(
            name, False,
            f"in-sample agreement {report.agreement:.3f} < {threshold} "
            f"({report.n_states} states, {report.n_nodes} nodes)",
        )

    # (b) Live run with every decision audited against the network.
    scheduler.attach_surrogate(surrogate, audit_every=1)
    scheduler.reset()
    sim = ClusterSimulator(SimulationConfig(pool_capacity_mb=10_000.0),
                           scheduler.make_eviction_policy())
    result = sim.run(tiny_workload(seed=0, n=24), scheduler)
    audits = scheduler.surrogate_audits
    disagreements = scheduler.surrogate_disagreements
    if audits == 0:
        return OracleResult(name, False, "no decisions were audited")
    if disagreements > (1.0 - threshold) * audits + 1:
        return OracleResult(
            name, False,
            f"live disagreements {disagreements}/{audits} exceed budget",
        )
    summary = result.summary()
    if summary.get("surrogate_audits") != float(audits):
        return OracleResult(
            name, False, "audit counters missing from telemetry summary"
        )

    # (c) Graceful fallback: forbid the tree's prediction via the mask.
    state0 = np.zeros(surrogate.state_dim)
    predicted = surrogate.predict(state0)
    mask = np.ones(scheduler.agent.action_dim, dtype=bool)
    mask[predicted] = False
    if surrogate.act(state0, mask) is not None:
        return OracleResult(
            name, False, "mask-invalid prediction did not signal fallback"
        )
    before = scheduler.surrogate_fallbacks
    action = scheduler.act_surrogate(state0, mask)
    if scheduler.surrogate_fallbacks != before + 1 or not mask[action]:
        return OracleResult(
            name, False, "scheduler fallback did not route to the network"
        )
    scheduler.detach_surrogate()
    return OracleResult(
        name, True,
        f"agreement {report.agreement:.3f} over {report.n_states} states "
        f"({report.n_nodes} nodes); live audit {disagreements}/{audits} "
        "disagreements; fallback ok",
    )


def _run_scheduler(scheduler, workload, capacity_mb: float = 1500.0):
    """One simulator run with the scheduler's own eviction pairing.

    Returns ``(simulator, result)`` so oracles can compare both the
    summary and the raw per-invocation columns.
    """
    scheduler.reset()
    eviction = (scheduler.make_eviction_policy()
                if hasattr(scheduler, "make_eviction_policy") else None)
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity_mb), eviction
    )
    result = sim.run(workload, scheduler)
    return sim, result


def _columns_equal(a, b) -> Optional[str]:
    """First diverging invocation-column field, or ``None`` when equal."""
    for fld in a._fields:
        if list(getattr(a, fld)) != list(getattr(b, fld)):
            return f"column {fld!r} diverges"
    return None


def _degenerate_vs_baseline(
    name: str, degenerate, baseline
) -> OracleResult:
    """Bit-compare a knob-disabled proactive policy against its baseline
    over two workload draws."""
    checked = 0
    for workload_name, seed in (("LO-Sim", 0), ("Peak", 1)):
        workload = build_workload(workload_name, seed=seed)
        sim_a, res_a = _run_scheduler(degenerate, workload)
        sim_b, res_b = _run_scheduler(baseline, workload)
        summary_a, summary_b = res_a.summary(), res_b.summary()
        if list(summary_a.items()) != list(summary_b.items()):
            diff = [k for k in summary_a
                    if summary_a.get(k) != summary_b.get(k)]
            return OracleResult(
                name, False,
                f"{workload_name}: summaries differ at {diff or 'keys'}",
            )
        mismatch = _columns_equal(
            sim_a.telemetry.invocation_columns(),
            sim_b.telemetry.invocation_columns(),
        )
        if mismatch:
            return OracleResult(name, False, f"{workload_name}: {mismatch}")
        checked += len(workload)
    return OracleResult(
        name, True, f"{checked} invocations bit-identical over 2 workloads"
    )


def oracle_mpc_forecast_off() -> OracleResult:
    """Forecast-disabled MPC is bit-identical to the keep-alive baseline."""
    from repro.schedulers.keepalive import KeepAliveScheduler
    from repro.schedulers.mpc import MPCScheduler

    return _degenerate_vs_baseline(
        "mpc_forecast_off",
        MPCScheduler(forecast=False),
        KeepAliveScheduler(),
    )


def oracle_lend_budget_zero() -> OracleResult:
    """Budget-zero lending is bit-identical to the greedy baseline."""
    from repro.schedulers.lending import PagurusLendingScheduler

    return _degenerate_vs_baseline(
        "lend_budget_zero",
        PagurusLendingScheduler(lend_budget=0),
        GreedyMatchScheduler(),
    )


def oracle_offline_deterministic() -> OracleResult:
    """Offline Q-learning is shard-order independent and replay-stable.

    Records a greedy reference trace, fits :func:`fit_from_traces` over
    the shards in two different orders (Q tables must be bit-identical),
    then serves the fitted policy through :class:`OfflineQScheduler`
    twice and demands bit-identical summaries and decision columns.
    """
    from repro.drl.offline import fit_from_traces, trace_lines_from_result
    from repro.schedulers.offline import OfflineQScheduler

    name = "offline_deterministic"
    workload = build_workload("LO-Sim", seed=0)
    _, reference = _run_scheduler(GreedyMatchScheduler(), workload,
                                  capacity_mb=float("inf"))
    lines = trace_lines_from_result(reference)
    half = len(lines) // 2
    shards = [lines[:half], lines[half:]]
    forward = fit_from_traces(shards)
    backward = fit_from_traces(list(reversed(shards)))
    if forward.states != backward.states:
        return OracleResult(name, False, "state sets differ across orders")
    if forward.q.tobytes() != backward.q.tobytes():
        return OracleResult(
            name, False, "Q tables differ across shard orders"
        )

    first_sim, first = _run_scheduler(OfflineQScheduler(forward), workload)
    second_sim, second = _run_scheduler(OfflineQScheduler(forward), workload)
    if list(first.summary().items()) != list(second.summary().items()):
        return OracleResult(name, False, "replay summaries differ")
    mismatch = _columns_equal(
        first_sim.telemetry.invocation_columns(),
        second_sim.telemetry.invocation_columns(),
    )
    if mismatch:
        return OracleResult(name, False, f"replay {mismatch}")
    return OracleResult(
        name, True,
        f"Q over {len(forward.states)} states bit-stable across shard "
        f"orders; {len(workload)}-invocation replay bit-identical",
    )


#: Registry of every differential oracle, in documentation order.
ORACLES: Dict[str, Callable[[], OracleResult]] = {
    "batch_vs_incremental": oracle_batch_vs_incremental,
    "global_vs_sharded": oracle_global_vs_sharded,
    "jobs_serial_vs_parallel": oracle_jobs_serial_vs_parallel,
    "fused_vs_unfused_qkv": oracle_fused_vs_unfused_qkv,
    "v1_float64_vs_float32": oracle_v1_float64_vs_float32,
    "sequential_vs_batched": oracle_sequential_vs_batched,
    "cached_vs_fresh": oracle_cached_vs_fresh,
    "streaming_vs_materialized": oracle_streaming_vs_materialized,
    "serve_replay": oracle_serve_replay,
    "lanes_vs_sequential": oracle_lanes_vs_sequential,
    "surrogate_vs_network": oracle_surrogate_vs_network,
    "mpc_forecast_off": oracle_mpc_forecast_off,
    "lend_budget_zero": oracle_lend_budget_zero,
    "offline_deterministic": oracle_offline_deterministic,
}


def run_oracles(
    names: Optional[Sequence[str]] = None,
) -> List[OracleResult]:
    """Run the selected (default: all) oracles; never raises.

    An oracle that throws is reported as a failed :class:`OracleResult`
    carrying the traceback tail, so one broken equivalence cannot hide
    the others.
    """
    results = []
    for oracle_name in (names if names is not None else list(ORACLES)):
        oracle = ORACLES[oracle_name]
        try:
            results.append(oracle())
        except Exception:
            tail = traceback.format_exc().strip().splitlines()[-1]
            results.append(OracleResult(oracle_name, False, f"raised: {tail}"))
    return results
