"""Runtime invariant monitors for the cluster simulator.

Every performance PR so far has justified itself with one-off parity
checks ("byte-identical when X is off").  The monitors here make the
underlying *state* invariants permanent: with ``SimulationConfig.verify``
enabled, a :class:`VerificationHarness` is attached to the simulator and,
after every applied decision and every processed event, re-asserts the
laws the optimised data structures are supposed to preserve:

* **container conservation** -- every container ever created is exactly
  one of pooled / running / destroyed, and live-memory accounting matches
  the live set (:class:`ConservationMonitor`);
* **capacity and concurrency bounds** -- no pool shard exceeds its
  capacity, no worker holds more concurrency slots than configured, and
  per-worker memory bookkeeping sums correctly
  (:class:`CapacityMonitor`);
* **pool-index consistency** -- the fingerprint match index of every
  :class:`~repro.cluster.pool.WarmPool` describes exactly the pooled
  containers, and the :class:`~repro.cluster.pool.PoolSet` shard map
  agrees with the shards (:class:`PoolIndexMonitor`);
* **volume mount/unmount pairing** -- the cleaner's mount and unmount
  counters balance against the volumes actually mounted, and no live
  container ever holds a foreign user-data volume
  (:class:`VolumeMonitor`);
* **clock monotonicity** -- simulation time never rewinds and no event is
  scheduled in the past (:class:`ClockMonitor`);
* **TTL-expiry ordering** -- expired containers really were expired, they
  leave in LRU order, and no pooled container outlives its TTL
  (:class:`TTLMonitor`).

Monitors deliberately read the private state of the structures they
check: they are the adversarial audit of those structures, so going
through the same public accessors the hot path uses would verify nothing.
When verification is disabled the simulator holds no harness at all and
the hooks reduce to a single ``is None`` test per event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.containers.container import Container
from repro.containers.volumes import VolumeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.simulator import ClusterSimulator

#: Absolute slack for floating-point accounting comparisons (MB / seconds).
_EPS = 1e-6


class InvariantViolation(AssertionError):
    """A runtime invariant monitor caught an inconsistent simulator state."""


class InvariantMonitor:
    """Base class of the pluggable invariant-monitor protocol.

    Subclasses override :meth:`check` (full-state assertion, run at every
    harness checkpoint) and/or :meth:`on_event` (fine-grained notification
    from the instrumented layers).  Both default to no-ops so monitors
    implement only what they watch.
    """

    #: Short name used in violation messages and registries.
    name: str = "invariant"

    def __init__(self) -> None:
        self.sim: Optional["ClusterSimulator"] = None

    def attach(self, sim: "ClusterSimulator") -> None:
        """Bind the monitor to the simulator whose state it audits."""
        self.sim = sim

    def on_event(self, kind: str, **info) -> None:
        """Receive a fine-grained notification from an instrumented layer."""

    def check(self) -> None:
        """Assert the monitored invariant over the full simulator state."""

    def fail(self, message: str) -> None:
        """Raise an :class:`InvariantViolation` tagged with this monitor."""
        raise InvariantViolation(f"[{self.name}] {message}")


class ConservationMonitor(InvariantMonitor):
    """created = pooled + running + destroyed, with matching accounting."""

    name = "conservation"

    def check(self) -> None:
        """Audit the live set, state partition and live-memory accounting."""
        lifecycle = self.sim.lifecycle
        live = lifecycle._live
        n_live = lifecycle.created_count - lifecycle.destroyed_count
        if len(live) != n_live:
            self.fail(
                f"live set has {len(live)} containers but counters say "
                f"{lifecycle.created_count} created - "
                f"{lifecycle.destroyed_count} destroyed = {n_live}"
            )
        pooled_ids = set(self.sim.pool._shard_of)
        n_running = 0
        for cid, container in live.items():
            if cid in pooled_ids:
                if not container.is_idle:
                    self.fail(
                        f"pooled container {cid} is {container.state.value}, "
                        "not idle"
                    )
            else:
                if not container.is_busy:
                    self.fail(
                        f"live unpooled container {cid} is "
                        f"{container.state.value}, neither starting nor busy"
                    )
                n_running += 1
        orphans = pooled_ids - set(live)
        if orphans:
            self.fail(f"pooled containers {sorted(orphans)} are not live")
        total = len(pooled_ids) + n_running + lifecycle.destroyed_count
        if total != lifecycle.created_count:
            self.fail(
                f"conservation broken: {lifecycle.created_count} created != "
                f"{len(pooled_ids)} pooled + {n_running} running + "
                f"{lifecycle.destroyed_count} destroyed"
            )
        expected_mb = sum(c.memory_mb for c in live.values())
        if abs(lifecycle.live_memory_mb - expected_mb) > _EPS * max(
            1.0, expected_mb
        ):
            self.fail(
                f"live memory accounting drifted: recorded "
                f"{lifecycle.live_memory_mb:.6f}MB, live set sums to "
                f"{expected_mb:.6f}MB"
            )


class CapacityMonitor(InvariantMonitor):
    """Pool shards within capacity; worker slots and memory books bounded.

    The worker memory books are checked against a shadow ledger maintained
    from ``create``/``destroy`` notifications rather than against the live
    containers' current memory: worker books price a container at its
    *placement-time* memory and never reprice on repack (the historical
    least-memory selection rule depends on that), so the live sum is not
    an invariant -- but agreement with an independent ledger applying the
    same pricing rule is, and it catches lost or doubled updates.
    """

    name = "capacity"

    def __init__(self) -> None:
        super().__init__()
        self._ledger: List[float] = []

    def attach(self, sim: "ClusterSimulator") -> None:
        """Bind to ``sim`` and zero one shadow-ledger cell per worker."""
        super().attach(sim)
        self._ledger = [0.0] * sim.workers.n_workers

    def on_event(self, kind: str, **info) -> None:
        """Apply create/destroy placement pricing to the shadow ledger."""
        if kind == "create":
            container = info["container"]
            worker_id = self.sim.workers.worker_of(container.container_id)
            self._ledger[worker_id] += container.memory_mb
        elif kind == "destroy":
            # Fired before the placement release, mirroring its arithmetic:
            # the current (possibly repacked) memory, clamped at zero.
            container = info["container"]
            worker_id = self.sim.workers.worker_of(container.container_id)
            self._ledger[worker_id] = max(
                0.0, self._ledger[worker_id] - container.memory_mb
            )

    def check(self) -> None:
        """Audit shard capacity, slot counts, placement and memory books."""
        for index, shard in enumerate(self.sim.pool._shards):
            if shard.used_mb > shard.capacity_mb + _EPS:
                self.fail(
                    f"pool shard {index} holds {shard.used_mb:.3f}MB over "
                    f"its {shard.capacity_mb:.3f}MB capacity"
                )
        placement = self.sim.placement
        limit = placement.concurrency_limit
        if limit is not None:
            for worker_id, n_slots in enumerate(placement.slot_counts()):
                if n_slots > limit:
                    self.fail(
                        f"worker {worker_id} holds {n_slots} concurrency "
                        f"slots over its limit of {limit}"
                    )
        live = self.sim.lifecycle._live
        placed = set(self.sim.workers._placement)
        if placed != set(live):
            self.fail(
                f"worker placement tracks {sorted(placed)} but live "
                f"containers are {sorted(live)}"
            )
        hosted_union = set()
        for worker in self.sim.workers.workers():
            foreign = worker.container_ids - set(live)
            if foreign:
                self.fail(
                    f"worker {worker.worker_id} hosts dead containers "
                    f"{sorted(foreign)}"
                )
            overlap = hosted_union & worker.container_ids
            if overlap:
                self.fail(
                    f"containers {sorted(overlap)} hosted on more than one "
                    f"worker"
                )
            hosted_union |= worker.container_ids
            expected = self._ledger[worker.worker_id]
            if abs(worker.memory_mb - expected) > _EPS * max(1.0, expected):
                self.fail(
                    f"worker {worker.worker_id} memory book says "
                    f"{worker.memory_mb:.6f}MB, shadow ledger says "
                    f"{expected:.6f}MB"
                )
        if hosted_union != set(live):
            self.fail(
                f"workers host {sorted(hosted_union)} but live containers "
                f"are {sorted(live)}"
            )


class PoolIndexMonitor(InvariantMonitor):
    """The fingerprint match index describes exactly the pooled containers."""

    name = "pool-index"

    def check(self) -> None:
        """Audit every shard's L1/L2/L3 index and the PoolSet shard map."""
        pool = self.sim.pool
        seen_ids = set()
        for shard_index, shard in enumerate(pool._shards):
            members = shard._containers
            if set(shard._index_keys) != set(members):
                self.fail(
                    f"shard {shard_index} index keys "
                    f"{sorted(shard._index_keys)} != members {sorted(members)}"
                )
            for cid, fps in shard._index_keys.items():
                for idx, key in (
                    (shard._idx_l1, fps[0]),
                    (shard._idx_l2, fps[:2]),
                    (shard._idx_l3, fps),
                ):
                    bucket = idx.get(key)
                    if bucket is None or cid not in bucket:
                        self.fail(
                            f"container {cid} missing from shard "
                            f"{shard_index} index bucket {key!r}"
                        )
            for idx_name, idx in (
                ("L1", shard._idx_l1),
                ("L2", shard._idx_l2),
                ("L3", shard._idx_l3),
            ):
                for key, bucket in idx.items():
                    if not bucket:
                        self.fail(
                            f"shard {shard_index} {idx_name} bucket {key!r} "
                            "is empty but not pruned"
                        )
                    stale = set(bucket) - set(members)
                    if stale:
                        self.fail(
                            f"shard {shard_index} {idx_name} bucket {key!r} "
                            f"indexes unpooled containers {sorted(stale)}"
                        )
            expected_mb = sum(c.memory_mb for c in members.values())
            if abs(shard.used_mb - expected_mb) > _EPS * max(1.0, expected_mb):
                self.fail(
                    f"shard {shard_index} used_mb {shard.used_mb:.6f} != "
                    f"member sum {expected_mb:.6f}"
                )
            for cid in members:
                if pool._shard_of.get(cid) != shard_index:
                    self.fail(
                        f"container {cid} lives in shard {shard_index} but "
                        f"the shard map says {pool._shard_of.get(cid)}"
                    )
            seen_ids |= set(members)
        phantom = set(pool._shard_of) - seen_ids
        if phantom:
            self.fail(f"shard map lists absent containers {sorted(phantom)}")


class VolumeMonitor(InvariantMonitor):
    """Mount/unmount pairing balances; user-data volumes never leak."""

    name = "volumes"

    def __init__(self) -> None:
        super().__init__()
        self._destroyed_mounts = 0

    def on_event(self, kind: str, **info) -> None:
        """Track mounts leaving with destroyed containers.

        Destroyed containers keep their mounted-volume list (the cleaner
        never runs on teardown), so their mounts stay outstanding in the
        store's counters; tracking them keeps the pairing law exact.
        """
        if kind == "destroy":
            self._destroyed_mounts += len(info["container"].mounted_volumes)

    def check(self) -> None:
        """Audit mount/unmount pairing and user-data volume ownership."""
        store = self.sim.volume_store
        live = self.sim.lifecycle._live
        live_mounts = sum(len(c.mounted_volumes) for c in live.values())
        outstanding = store.mount_count - store.unmount_count
        expected = live_mounts + self._destroyed_mounts
        if outstanding != expected:
            self.fail(
                f"mount/unmount pairing broken: {store.mount_count} mounts - "
                f"{store.unmount_count} unmounts = {outstanding}, but "
                f"{live_mounts} volumes are mounted on live containers and "
                f"{self._destroyed_mounts} left with destroyed ones"
            )
        for container in live.values():
            owner = container.current_function
            user_volumes = [
                v for v in container.mounted_volumes
                if v.kind is VolumeKind.USER_DATA
            ]
            if len(user_volumes) > 1:
                self.fail(
                    f"container {container.container_id} mounts "
                    f"{len(user_volumes)} user-data volumes"
                )
            for volume in user_volumes:
                if owner is not None and volume.owner_function != owner:
                    self.fail(
                        f"container {container.container_id} serving "
                        f"{owner!r} still mounts the user-data volume of "
                        f"{volume.owner_function!r}"
                    )


class ClockMonitor(InvariantMonitor):
    """Simulation time only advances; nothing is scheduled in the past."""

    name = "clock"

    def __init__(self) -> None:
        super().__init__()
        self._last_advance = float("-inf")

    def on_event(self, kind: str, **info) -> None:
        """Watch clock advances and reject scheduling into the past."""
        if kind == "advance":
            time = info["time"]
            if time + _EPS < self._last_advance:
                self.fail(
                    f"clock rewound from {self._last_advance:.6f}s to "
                    f"{time:.6f}s"
                )
            self._last_advance = time
        elif kind == "schedule":
            time = info["time"]
            now = self.sim.loop.now
            if time < now - _EPS:
                self.fail(
                    f"event scheduled at {time:.6f}s, in the past of "
                    f"{now:.6f}s"
                )

    def check(self) -> None:
        """Assert the clock never reads earlier than its last advance."""
        now = self.sim.loop.now
        if now + _EPS < self._last_advance:
            self.fail(
                f"clock reads {now:.6f}s but previously advanced to "
                f"{self._last_advance:.6f}s"
            )


class TTLMonitor(InvariantMonitor):
    """TTL expiry evicts exactly the expired containers, oldest first."""

    name = "ttl"

    def on_event(self, kind: str, **info) -> None:
        """Validate each TTL-expiry batch against threshold and LRU order."""
        if kind != "ttl_expired":
            return
        now, ttl = info["now"], info["ttl"]
        containers: Sequence[Container] = info["containers"]
        threshold = now - ttl
        for container in containers:
            if container.last_used_at >= threshold + _EPS:
                self.fail(
                    f"container {container.container_id} expired at "
                    f"{now:.6f}s though last used {container.last_used_at:.6f}s "
                    f"is within the {ttl:.3f}s TTL"
                )
        # Per-shard LRU heads pop oldest-first; with one shard the whole
        # batch must therefore be ordered by idle time.
        if self.sim.pool.n_shards == 1:
            stamps = [c.last_used_at for c in containers]
            if any(a > b + _EPS for a, b in zip(stamps, stamps[1:])):
                self.fail(
                    f"TTL expiry batch out of LRU order: {stamps}"
                )

    def check(self) -> None:
        """Assert no pooled container is idle past the active TTL."""
        ttl = self.sim.eviction.ttl_s
        if ttl is None:
            return
        now = self.sim.loop.now
        for container in self.sim.pool.containers():
            idle = now - container.last_used_at
            if idle > ttl + _EPS:
                self.fail(
                    f"container {container.container_id} idle {idle:.6f}s, "
                    f"past the {ttl:.3f}s TTL, but still pooled"
                )


#: Monitor classes installed by default when ``SimulationConfig.verify``
#: is enabled.
DEFAULT_MONITORS = (
    ConservationMonitor,
    CapacityMonitor,
    PoolIndexMonitor,
    VolumeMonitor,
    ClockMonitor,
    TTLMonitor,
)


class VerificationHarness:
    """Routes layer notifications and checkpoints to a monitor set.

    The simulator owns one harness when ``SimulationConfig.verify`` is on.
    Instrumented layers forward fine-grained notifications through
    :meth:`notify` / :meth:`observe_loop`; the simulator calls
    :meth:`checkpoint` after every applied decision and processed event,
    which runs every monitor's full-state :meth:`~InvariantMonitor.check`.
    The first violated invariant raises :class:`InvariantViolation`.
    """

    def __init__(
        self, monitors: Optional[Sequence[InvariantMonitor]] = None
    ) -> None:
        self.monitors: List[InvariantMonitor] = (
            list(monitors)
            if monitors is not None
            else [cls() for cls in DEFAULT_MONITORS]
        )
        #: Checkpoints executed so far (observability + overhead tests).
        self.checks_run = 0

    def attach(self, sim: "ClusterSimulator") -> None:
        """Bind every monitor to ``sim``."""
        for monitor in self.monitors:
            monitor.attach(sim)

    def notify(self, kind: str, **info) -> None:
        """Forward a layer notification to every monitor."""
        for monitor in self.monitors:
            monitor.on_event(kind, **info)

    def observe_loop(self, kind: str, time: float) -> None:
        """Event-loop observer entry point (``advance`` / ``schedule``)."""
        for monitor in self.monitors:
            monitor.on_event(kind, time=time)

    def checkpoint(self) -> None:
        """Run every monitor's full-state check once."""
        self.checks_run += 1
        for monitor in self.monitors:
            monitor.check()

    def health_report(self) -> dict:
        """Run one checkpoint and report it as a health-check payload.

        The serving plane's ``/healthz`` endpoint calls this on demand:
        instead of letting the first :class:`InvariantViolation` propagate
        (as the per-event hooks do), the violation is captured and returned
        as data -- ``{"healthy": bool, "monitors": [...], "checks_run": n,
        "violation": str | None}`` -- so an unhealthy server answers 500
        with the failed invariant rather than dying mid-request.
        """
        violation: Optional[str] = None
        try:
            self.checkpoint()
        except InvariantViolation as exc:
            violation = str(exc)
        return {
            "healthy": violation is None,
            "monitors": [monitor.name for monitor in self.monitors],
            "checks_run": self.checks_run,
            "violation": violation,
        }
