"""Golden-trace record / replay / diff for the cluster simulator.

A *trace* is the complete decision-level behaviour of one simulated run:
one compact JSON line per invocation (container chosen, match level,
latency, queueing, worker), preceded by a versioned header that names the
``(workload, scheduler, seed, pool)`` cell it was recorded from.  Because
the simulator is deterministic, re-recording from the header must
reproduce the trace **bit-identically** -- floats are serialized with
Python's shortest-round-trip ``repr`` so equality really is bitwise.

Checked-in golden traces (``tests/golden_traces/``, regenerated with
:func:`record_golden_traces`) turn any behavioural drift into a
structured :class:`TraceDivergence` -- the exact first event and field
that changed -- instead of a summary-level mismatch.  The ``repro trace
record|replay|diff`` CLI exposes the same primitives.

Format (version 1)
------------------
Line 0 is the header object::

    {"version": 1, "workload": "LO-Sim", "scheduler": "lru", "seed": 0,
     "pool": "Tight", "capacity_mb": 1234.5, "n_events": 300}

Each following line is one invocation in arrival order::

    {"i": 0, "inv": 1, "fn": "f3", "t": 0.81, "cold": true, "cid": 1,
     "m": 0, "lat": 3.07, "q": 0.0, "w": 0, "exec": 1.2}

with ``m`` the Table-I match level as an int and ``lat`` the startup
latency (queueing included; ``q`` is the queueing component alone).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.cluster.telemetry import InvocationRecord
from repro.containers.matching import MatchLevel
from repro.experiments.common import pool_sizes
from repro.experiments.parallel import build_scheduler
from repro.workloads.fstartbench import build_workload

#: Version stamp written into every trace header; bump on any change to
#: the line schema or field semantics.
TRACE_FORMAT_VERSION = 1

#: The checked-in golden matrix: small, fast cells covering both a
#: similarity extreme and a bursty arrival pattern across five scheduler
#: families (exact-match LRU, multi-level greedy, fixed keep-alive, and
#: the proactive MPC pre-warm / Pagurus lending policies, whose lend and
#: pre-warm side effects must replay byte-identically too).
GOLDEN_MATRIX: Tuple[Tuple[str, str], ...] = tuple(
    (workload, scheduler)
    for workload in ("LO-Sim", "Peak")
    for scheduler in ("lru", "greedy", "keepalive", "mpc", "lending")
)


@dataclass(frozen=True)
class TraceSpec:
    """The (workload, scheduler, seed, pool) cell a trace is recorded from.

    ``verify`` additionally attaches the runtime invariant monitors during
    recording; it does not affect the recorded behaviour (and is therefore
    not part of the header).  ``stream`` records through
    :meth:`~repro.cluster.simulator.ClusterSimulator.run_stream` (the
    workload wrapped as a lazy stream) instead of batch ``run``; the two
    paths are decision-identical by design, so it too is excluded from the
    header -- a golden trace recorded either way replays against both.
    """

    workload: str
    scheduler: str
    seed: int = 0
    pool: str = "Tight"
    verify: bool = False
    stream: bool = False


@dataclass(frozen=True)
class TraceHeader:
    """Line 0 of a trace file: provenance plus the event count."""

    version: int
    workload: str
    scheduler: str
    seed: int
    pool: str
    capacity_mb: float
    n_events: int

    def spec(self, verify: bool = False) -> TraceSpec:
        """The recording spec this header was produced from."""
        return TraceSpec(
            workload=self.workload,
            scheduler=self.scheduler,
            seed=self.seed,
            pool=self.pool,
            verify=verify,
        )

    def to_json(self) -> str:
        """Serialize the header as one compact JSON object line."""
        return json.dumps(asdict(self))

    @staticmethod
    def from_json(line: str) -> "TraceHeader":
        data = json.loads(line)
        header = TraceHeader(**data)
        if header.version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.version} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        return header


#: JSON key per :class:`TraceLine` field, in serialization order.
_LINE_KEYS = (
    ("index", "i"),
    ("invocation_id", "inv"),
    ("function", "fn"),
    ("arrival", "t"),
    ("cold", "cold"),
    ("container_id", "cid"),
    ("match", "m"),
    ("latency_s", "lat"),
    ("queue_s", "q"),
    ("worker", "w"),
    ("exec_s", "exec"),
)


@dataclass(frozen=True)
class TraceLine:
    """One scheduling decision/outcome, in arrival order."""

    index: int
    invocation_id: int
    function: str
    arrival: float
    cold: bool
    container_id: int
    match: int
    latency_s: float
    queue_s: float
    worker: int
    exec_s: float

    @staticmethod
    def from_record(index: int, record: InvocationRecord) -> "TraceLine":
        return TraceLine(
            index=index,
            invocation_id=record.invocation_id,
            function=record.function_name,
            arrival=record.arrival_time,
            cold=record.cold_start,
            container_id=record.container_id,
            match=int(record.match),
            latency_s=record.startup_latency_s,
            queue_s=record.queue_delay_s,
            worker=record.worker_id,
            exec_s=record.execution_time_s,
        )

    @property
    def match_level(self) -> MatchLevel:
        """The Table-I match level of the decision."""
        return MatchLevel(self.match)

    def to_json(self) -> str:
        """Serialize the line with the compact key set of the format spec."""
        data = {key: getattr(self, attr) for attr, key in _LINE_KEYS}
        return json.dumps(data)

    @staticmethod
    def from_json(line: str) -> "TraceLine":
        data = json.loads(line)
        return TraceLine(**{attr: data[key] for attr, key in _LINE_KEYS})


@dataclass(frozen=True)
class Trace:
    """A parsed trace: header plus every decision line."""

    header: TraceHeader
    lines: Tuple[TraceLine, ...]

    def to_jsonl(self) -> str:
        """Serialize to the on-disk JSONL form (trailing newline included)."""
        out = [self.header.to_json()]
        out.extend(line.to_json() for line in self.lines)
        return "\n".join(out) + "\n"

    @staticmethod
    def from_jsonl(text: str) -> "Trace":
        rows = [row for row in text.splitlines() if row.strip()]
        if not rows:
            raise ValueError("empty trace")
        header = TraceHeader.from_json(rows[0])
        lines = tuple(TraceLine.from_json(row) for row in rows[1:])
        if header.n_events != len(lines):
            raise ValueError(
                f"trace header promises {header.n_events} events, "
                f"file holds {len(lines)}"
            )
        return Trace(header=header, lines=lines)


@dataclass(frozen=True)
class TraceDivergence:
    """The first point where two traces disagree.

    ``index`` is the event index (``-1`` for a header-level divergence),
    ``field`` the differing :class:`TraceLine` / :class:`TraceHeader`
    attribute, and ``expected`` / ``actual`` the two values.
    """

    index: int
    field: str
    expected: object
    actual: object

    def __str__(self) -> str:
        where = "header" if self.index < 0 else f"event {self.index}"
        return (
            f"first divergence at {where}, field {self.field!r}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


# ---------------------------------------------------------------------------
# Record / replay
# ---------------------------------------------------------------------------

def _run_cell(spec: TraceSpec) -> Tuple[float, SimulationResult]:
    """Run the spec's cell exactly as the experiment harness would."""
    workload = build_workload(spec.workload, seed=spec.seed)
    capacity = pool_sizes(workload)[spec.pool]
    scheduler = build_scheduler(spec.scheduler)
    scheduler.reset()
    if hasattr(scheduler, "observe_workload"):
        scheduler.observe_workload(workload)
    eviction = (
        scheduler.make_eviction_policy()
        if hasattr(scheduler, "make_eviction_policy")
        else None
    )
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity, verify=spec.verify),
        eviction,
    )
    if spec.stream:
        from repro.workloads.stream import stream_from_workload

        return capacity, sim.run_stream(
            stream_from_workload(workload), scheduler
        )
    return capacity, sim.run(workload, scheduler)


def record_trace(spec: TraceSpec) -> Trace:
    """Simulate the spec's cell and capture its full decision trace.

    Reads the telemetry's invocation columns directly
    (:meth:`~repro.cluster.telemetry.Telemetry.invocation_columns`), so no
    :class:`~repro.cluster.telemetry.InvocationRecord` objects are
    materialized on the recording path; the line values are identical to
    :meth:`TraceLine.from_record` over the row view.
    """
    capacity, result = _run_cell(spec)
    cols = result.telemetry.invocation_columns()
    lines = tuple(
        TraceLine(
            index=i,
            invocation_id=inv,
            function=fn,
            arrival=arrival,
            cold=bool(cold),
            container_id=cid,
            match=match,
            latency_s=latency,
            queue_s=queue,
            worker=worker,
            exec_s=exec_s,
        )
        for i, (inv, fn, arrival, cold, cid, match, latency, queue, worker,
                exec_s)
        in enumerate(zip(
            cols.invocation_id, cols.function_name, cols.arrival_time,
            cols.cold_start, cols.container_id, cols.match,
            cols.startup_latency_s, cols.queue_delay_s, cols.worker_id,
            cols.execution_time_s,
        ))
    )
    return Trace(
        header=TraceHeader(
            version=TRACE_FORMAT_VERSION,
            workload=spec.workload,
            scheduler=spec.scheduler,
            seed=spec.seed,
            pool=spec.pool,
            capacity_mb=capacity,
            n_events=len(lines),
        ),
        lines=lines,
    )


def replay_trace(trace: Trace, verify: bool = False) -> Trace:
    """Re-record a trace from its own header (must match bit-identically)."""
    return record_trace(trace.header.spec(verify=verify))


def diff_traces(expected: Trace, actual: Trace) -> Optional[TraceDivergence]:
    """First divergence between two traces, or ``None`` when identical."""
    for field_name in ("version", "workload", "scheduler", "seed", "pool",
                       "capacity_mb", "n_events"):
        want = getattr(expected.header, field_name)
        got = getattr(actual.header, field_name)
        if want != got:
            return TraceDivergence(-1, field_name, want, got)
    for index, (want_line, got_line) in enumerate(
        zip(expected.lines, actual.lines)
    ):
        for attr, _ in _LINE_KEYS:
            want = getattr(want_line, attr)
            got = getattr(got_line, attr)
            if want != got:
                return TraceDivergence(index, attr, want, got)
    return None


# ---------------------------------------------------------------------------
# File I/O and the golden matrix
# ---------------------------------------------------------------------------

def write_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace as JSONL; returns the path."""
    path = Path(path)
    path.write_text(trace.to_jsonl())
    return path


def read_trace(path: Union[str, Path]) -> Trace:
    """Parse a JSONL trace file."""
    return Trace.from_jsonl(Path(path).read_text())


def golden_trace_name(workload: str, scheduler: str) -> str:
    """Canonical golden-trace filename for one matrix cell."""
    return f"{workload.lower()}_{scheduler}.jsonl"


def record_golden_traces(
    root: Union[str, Path],
    matrix: Sequence[Tuple[str, str]] = GOLDEN_MATRIX,
    seed: int = 0,
    pool: str = "Tight",
) -> List[Path]:
    """(Re)record the golden matrix under ``root``; returns written paths."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for workload, scheduler in matrix:
        trace = record_trace(
            TraceSpec(workload=workload, scheduler=scheduler,
                      seed=seed, pool=pool)
        )
        written.append(
            write_trace(trace, root / golden_trace_name(workload, scheduler))
        )
    return written
