"""Dockerfile-style parser that classifies packages into the three levels.

The paper (Fig. 5) shows a real Dockerfile whose lines are categorized into
OS (the ``FROM`` base image), language (e.g. building Python from source) and
runtime (``pip install torch``).  The paper relies on predefined tags from
users/experts for the categorization; we reproduce that interface: the parser
understands a small Dockerfile dialect where install commands reference
packages known to a :class:`~repro.packages.catalog.PackageCatalog`, which
already carries the level tag.

Supported syntax (one instruction per line, ``\\`` continuations are joined):

* ``FROM <name>:<version>``            -- the OS base image (L1)
* ``RUN install <name>==<version>...`` -- install catalog packages
* ``RUN pip install <n>==<v>...``      -- same, pip-flavoured
* ``RUN apt-get install ...`` / ``apk add ...`` -- OS-level extras; resolved
  against the catalog like any other install
* ``WORKDIR``, ``ENV``, ``COPY``, ``CMD``, ``EXPOSE``, comments -- ignored

Unknown packages raise :class:`UnknownPackageError` rather than being guessed
at: level tags are the contract that makes multi-level matching sound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence

from repro.packages.catalog import PackageCatalog
from repro.packages.package import Package, PackageSet


class DockerfileSyntaxError(ValueError):
    """Raised when a line cannot be parsed."""


class UnknownPackageError(KeyError):
    """Raised when an installed package is not present in the catalog."""


_IGNORED_INSTRUCTIONS = {
    "WORKDIR",
    "ENV",
    "COPY",
    "ADD",
    "CMD",
    "ENTRYPOINT",
    "EXPOSE",
    "LABEL",
    "USER",
    "ARG",
    "VOLUME",
}

_PKG_SPEC_RE = re.compile(r"^(?P<name>[A-Za-z0-9_.+-]+)==(?P<version>[A-Za-z0-9_.+-]+)$")
_FROM_RE = re.compile(r"^(?P<name>[A-Za-z0-9_.+-]+):(?P<version>[A-Za-z0-9_.+-]+)$")

_INSTALL_PREFIXES: Sequence[Sequence[str]] = (
    ("install",),
    ("pip", "install"),
    ("pip3", "install"),
    ("npm", "install"),
    ("apt-get", "install"),
    ("apt", "install"),
    ("apk", "add"),
    ("yum", "install"),
    ("go", "get"),
)


@dataclass(frozen=True)
class ParsedDockerfile:
    """The result of parsing: a level-partitioned package set."""

    packages: PackageSet
    base_image: Package

    @property
    def total_size_mb(self) -> float:
        return self.packages.total_size_mb


class DockerfileParser:
    """Parse the Dockerfile dialect against a package catalog."""

    def __init__(self, catalog: PackageCatalog) -> None:
        self._catalog = catalog

    # -- public API ---------------------------------------------------------
    def parse(self, text: str) -> ParsedDockerfile:
        """Parse ``text`` and return the classified package set.

        Raises
        ------
        DockerfileSyntaxError
            On malformed lines or a missing/duplicate ``FROM``.
        UnknownPackageError
            When an installed package is not in the catalog.
        """
        base: Package | None = None
        packages: List[Package] = []
        for lineno, line in enumerate(self._logical_lines(text), start=1):
            tokens = line.split()
            instruction = tokens[0].upper()
            if instruction == "FROM":
                if base is not None:
                    raise DockerfileSyntaxError(
                        f"line {lineno}: multiple FROM instructions"
                    )
                base = self._parse_from(tokens, lineno)
                packages.append(base)
            elif instruction == "RUN":
                packages.extend(self._parse_run(tokens[1:], lineno))
            elif instruction in _IGNORED_INSTRUCTIONS:
                continue
            else:
                raise DockerfileSyntaxError(
                    f"line {lineno}: unknown instruction {instruction!r}"
                )
        if base is None:
            raise DockerfileSyntaxError("missing FROM instruction")
        return ParsedDockerfile(packages=PackageSet(packages), base_image=base)

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _logical_lines(text: str) -> List[str]:
        """Join ``\\`` continuations, strip comments and blank lines."""
        merged: List[str] = []
        pending = ""
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.endswith("\\"):
                pending += line[:-1] + " "
                continue
            merged.append(pending + line)
            pending = ""
        if pending:
            merged.append(pending.strip())
        return merged

    def _parse_from(self, tokens: Sequence[str], lineno: int) -> Package:
        if len(tokens) != 2:
            raise DockerfileSyntaxError(f"line {lineno}: FROM takes one image ref")
        m = _FROM_RE.match(tokens[1])
        if m is None:
            raise DockerfileSyntaxError(
                f"line {lineno}: bad image reference {tokens[1]!r}"
            )
        try:
            return self._catalog.get(m.group("name"), m.group("version"))
        except KeyError as exc:
            raise UnknownPackageError(tokens[1]) from exc

    def _parse_run(self, tokens: Sequence[str], lineno: int) -> List[Package]:
        """Parse a RUN command, possibly containing ``&&``-chained installs."""
        found: List[Package] = []
        for segment in self._split_on_and(tokens):
            specs = self._match_install(segment)
            if specs is None:
                # Non-install RUN segment (e.g. `make`, `wget`): ignored, the
                # cost is already folded into the package's install_cost_s.
                continue
            for spec in specs:
                m = _PKG_SPEC_RE.match(spec)
                if m is None:
                    raise DockerfileSyntaxError(
                        f"line {lineno}: bad package spec {spec!r} "
                        "(expected name==version)"
                    )
                key = f"{m.group('name')}=={m.group('version')}"
                if key not in self._catalog:
                    raise UnknownPackageError(key)
                found.append(self._catalog.by_key(key))
        return found

    @staticmethod
    def _split_on_and(tokens: Sequence[str]) -> List[List[str]]:
        segments: List[List[str]] = [[]]
        for tok in tokens:
            if tok == "&&":
                segments.append([])
            else:
                segments[-1].append(tok)
        return [s for s in segments if s]

    @staticmethod
    def _match_install(segment: Sequence[str]) -> List[str] | None:
        """If ``segment`` is an install command, return its package specs."""
        for prefix in _INSTALL_PREFIXES:
            n = len(prefix)
            if len(segment) > n and tuple(t.lower() for t in segment[:n]) == prefix:
                # Drop option flags like -y / --no-cache.
                return [t for t in segment[n:] if not t.startswith("-")]
        return None
