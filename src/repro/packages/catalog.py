"""Catalog of realistic package profiles.

FStartBench's 13 functions (Table II) are built from a small set of popular
OS / language / runtime packages.  This module defines those packages with
sizes and install costs chosen to be consistent with the paper's reported
ratios:

* code pulling dominates cold start (47--89 % of total startup latency),
* runtime initialization is cheap for interpreted languages (~6 %) and
  expensive for compiled ones (~45 %),
* function memory footprints vary over roughly a 4x range.

The catalog is deterministic -- no randomness -- so FStartBench workloads are
reproducible byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.packages.package import Package, PackageLevel


class PackageCatalog:
    """A registry of known packages keyed by ``name==version``.

    The catalog enforces uniqueness of keys so the rest of the system can
    treat package identity as a plain string comparison.
    """

    def __init__(self, packages: Iterable[Package] = ()) -> None:
        self._packages: Dict[str, Package] = {}
        for pkg in packages:
            self.add(pkg)

    def add(self, pkg: Package) -> None:
        """Register ``pkg``; raises ``ValueError`` on a conflicting key.

        A conflict is the same ``name==version`` key with different metadata
        (level, size or install cost); re-adding an identical package is
        idempotent.
        """
        existing = self._packages.get(pkg.key)
        if existing is not None and (
            existing.level is not pkg.level
            or existing.size_mb != pkg.size_mb
            or existing.install_cost_s != pkg.install_cost_s
        ):
            raise ValueError(f"conflicting package registration for {pkg.key}")
        self._packages[pkg.key] = pkg

    def get(self, name: str, version: str) -> Package:
        """Look up a package; raises ``KeyError`` if unknown."""
        return self._packages[f"{name}=={version}"]

    def by_key(self, key: str) -> Package:
        """Look up a package by its ``name==version`` key."""
        return self._packages[key]

    def __contains__(self, key: str) -> bool:
        return key in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def all_packages(self) -> List[Package]:
        """All registered packages in deterministic (sorted) order."""
        return sorted(self._packages.values())

    def at_level(self, level: PackageLevel) -> List[Package]:
        """All packages of a given level, sorted."""
        return sorted(p for p in self._packages.values() if p.level == level)

    def index_of(self, pkg: Package) -> int:
        """Stable integer index of ``pkg`` within the catalog.

        Used by the DRL state encoder to build fixed-size bag-of-package
        vectors.
        """
        keys = sorted(self._packages)
        return keys.index(pkg.key)

    def key_order(self) -> List[str]:
        """Deterministic ordering of all keys (for state encoding)."""
        return sorted(self._packages)


# ---------------------------------------------------------------------------
# Default catalog used by FStartBench.
#
# Sizes (MB) are representative of the real artifacts: Alpine ~8MB,
# Debian ~120MB, CentOS ~230MB; JDK ~190MB; Python ~50MB; Node ~160MB;
# Go toolchain ~350MB; Tensorflow ~500MB etc.  Install costs model
# compile/extract overheads (large for compiled stacks like the JDK).
# ---------------------------------------------------------------------------

_OS = PackageLevel.OS
_LANG = PackageLevel.LANGUAGE
_RT = PackageLevel.RUNTIME

_DEFAULT_PACKAGES: List[Package] = [
    # --- OS bases and shared OS sub-packages (L1) ---
    # Real base images share sub-packages (glibc, coreutils, certificates),
    # which is what gives the paper's workloads non-trivial Jaccard
    # similarity even across different OS bases.
    Package("alpine-base", "3.18", _OS, size_mb=3.0, install_cost_s=0.02),
    Package("debian-base", "11", _OS, size_mb=60.0, install_cost_s=0.20),
    Package("centos-base", "7", _OS, size_mb=170.0, install_cost_s=0.30),
    Package("ubuntu-base", "20.04", _OS, size_mb=45.0, install_cost_s=0.15),
    Package("busybox-base", "1.36", _OS, size_mb=2.0, install_cost_s=0.01),
    Package("musl", "1.2", _OS, size_mb=4.0, install_cost_s=0.02),
    Package("glibc", "2.31", _OS, size_mb=40.0, install_cost_s=0.08),
    Package("coreutils", "8.32", _OS, size_mb=18.0, install_cost_s=0.04),
    Package("ca-certificates", "2023", _OS, size_mb=1.0, install_cost_s=0.01),
    # --- language stacks and shared tooling (L2) ---
    Package("openjdk", "11", _LANG, size_mb=180.0, install_cost_s=1.0),
    Package("maven", "3.8", _LANG, size_mb=10.0, install_cost_s=0.2),
    Package("nodejs", "18", _LANG, size_mb=150.0, install_cost_s=0.5),
    Package("npm", "9", _LANG, size_mb=10.0, install_cost_s=0.1),
    Package("golang", "1.20", _LANG, size_mb=350.0, install_cost_s=1.0),
    Package("python", "3.9.17", _LANG, size_mb=45.0, install_cost_s=0.4),
    Package("pip", "23", _LANG, size_mb=5.0, install_cost_s=0.1),
    Package("gcc-toolchain", "9", _LANG, size_mb=280.0, install_cost_s=1.5),
    # --- runtime libraries (L3) ---
    Package("springboot", "2.7", _RT, size_mb=35.0, install_cost_s=0.8),
    Package("express", "4.18", _RT, size_mb=2.0, install_cost_s=0.10),
    Package("gin", "1.9", _RT, size_mb=12.0, install_cost_s=0.2),
    Package("flask", "2.3", _RT, size_mb=3.0, install_cost_s=0.08),
    Package("numpy", "1.24", _RT, size_mb=28.0, install_cost_s=0.25),
    Package("pandas", "2.0", _RT, size_mb=60.0, install_cost_s=0.35),
    Package("matplotlib", "3.7", _RT, size_mb=38.0, install_cost_s=0.30),
    Package("tensorflow", "2.12", _RT, size_mb=500.0, install_cost_s=2.5),
    Package("libcos-sdk", "5.9", _RT, size_mb=9.0, install_cost_s=0.15),
    Package("sharp", "0.32", _RT, size_mb=30.0, install_cost_s=0.4),
    Package("imagemagick-java", "7.1", _RT, size_mb=45.0, install_cost_s=0.6),
]

# Whole-level groups: a function that uses "the Alpine OS" installs the whole
# group; Table-I matching compares groups as sets, so two Alpine images still
# L1-match while Debian and CentOS images share glibc/coreutils for the
# similarity metric without matching at L1.
OS_GROUPS: dict[str, List[tuple[str, str]]] = {
    "alpine": [("alpine-base", "3.18"), ("musl", "1.2"),
               ("ca-certificates", "2023")],
    "debian": [("debian-base", "11"), ("glibc", "2.31"),
               ("coreutils", "8.32"), ("ca-certificates", "2023")],
    "centos": [("centos-base", "7"), ("glibc", "2.31"),
               ("coreutils", "8.32"), ("ca-certificates", "2023")],
    "ubuntu": [("ubuntu-base", "20.04"), ("glibc", "2.31"),
               ("coreutils", "8.32"), ("ca-certificates", "2023")],
    "busybox": [("busybox-base", "1.36"), ("musl", "1.2")],
}

LANGUAGE_GROUPS: dict[str, List[tuple[str, str]]] = {
    "java": [("openjdk", "11"), ("maven", "3.8")],
    "nodejs": [("nodejs", "18"), ("npm", "9")],
    "go": [("golang", "1.20")],
    "python": [("python", "3.9.17"), ("pip", "23")],
    "cpp": [("gcc-toolchain", "9")],
}


def default_catalog() -> PackageCatalog:
    """Build the default FStartBench package catalog (deterministic)."""
    return PackageCatalog(_DEFAULT_PACKAGES)


def group_packages(catalog: PackageCatalog, group: List[tuple[str, str]]) -> List[Package]:
    """Resolve a package group (list of ``(name, version)``) to packages."""
    return [catalog.get(name, version) for name, version in group]


def os_group(catalog: PackageCatalog, name: str) -> List[Package]:
    """Resolve an OS group (e.g. ``"alpine"``) to its packages."""
    return group_packages(catalog, OS_GROUPS[name])


def language_group(catalog: PackageCatalog, name: str) -> List[Package]:
    """Resolve a language group (e.g. ``"python"``) to its packages."""
    return group_packages(catalog, LANGUAGE_GROUPS[name])
