"""Core package value types.

A :class:`Package` is an immutable description of a software package that can
be installed inside a container: its name, version, level (OS / language /
runtime) and size.  Sizes drive both pull time (network transfer) and memory
accounting in the warm pool, so they are first-class here.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Tuple


class PackageLevel(enum.IntEnum):
    """The three package levels of multi-level container reuse.

    The integer values are ordered by depth: reusing a container at a deeper
    level skips more startup work.  ``OS`` is the shallowest (only the sandbox
    and base image are shared) and ``RUNTIME`` the deepest (a full match).
    """

    OS = 1
    LANGUAGE = 2
    RUNTIME = 3

    @property
    def label(self) -> str:
        """Human-readable label used in reports (``L1`` / ``L2`` / ``L3``)."""
        return f"L{int(self)}"


@dataclass(frozen=True, order=True)
class Package:
    """An immutable software package.

    Parameters
    ----------
    name:
        Canonical package name, e.g. ``"ubuntu"`` or ``"numpy"``.
    version:
        Version string.  Two packages with the same name but different
        versions are *different* packages and never match.
    level:
        Which of the three reuse levels the package belongs to.
    size_mb:
        On-disk size in megabytes.  Drives pull time and memory accounting.
    install_cost_s:
        Extra installation time (seconds) beyond the network transfer, e.g.
        compilation or post-install scripts.
    """

    name: str
    version: str
    level: PackageLevel = field(compare=False)
    size_mb: float = field(compare=False)
    install_cost_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("package name must be non-empty")
        if self.size_mb < 0:
            raise ValueError(f"package {self.name}: size_mb must be >= 0")
        if self.install_cost_s < 0:
            raise ValueError(f"package {self.name}: install_cost_s must be >= 0")

    @property
    def key(self) -> str:
        """Unique identity string (``name==version``)."""
        return f"{self.name}=={self.version}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.key} [{self.level.label}, {self.size_mb:.0f}MB]"


#: Process-wide intern table mapping a level's frozen package set to a small
#: integer *fingerprint*.  Two level sets are equal **iff** they intern to the
#: same integer, so Table-I whole-level equality becomes an int comparison
#: (no hash-collision caveat: interning is keyed on set equality itself).
_LEVEL_INTERN: Dict[FrozenSet[Package], int] = {}

#: Intern table for whole fingerprint tuples: equal-configuration package
#: sets share the *same tuple object*, so a full (L3) Table-I match is a
#: pointer-identity check.
_TUPLE_INTERN: Dict[Tuple[int, int, int], Tuple[int, int, int]] = {}


def _intern_level(level_set: FrozenSet[Package]) -> int:
    """Intern ``level_set`` and return its process-wide fingerprint."""
    # dict.setdefault is atomic under the GIL; concurrent first-interns of
    # the same set both receive the winning id (gaps in the id space are
    # harmless -- only equality of fingerprints matters).
    return _LEVEL_INTERN.setdefault(level_set, len(_LEVEL_INTERN))


class PackageSet:
    """An immutable set of packages partitioned by level.

    This is the representation the paper calls ``{L1, L2, L3}`` -- three
    lists, one per level.  Equality of a level between a function and a
    container is *whole-level* equality (Table I), which this class exposes
    via :meth:`level_set`.

    Each level set is interned at construction into a process-wide table,
    yielding the :attr:`level_fingerprints` tuple ``(fp(L1), fp(L2),
    fp(L3))``; the Table-I matcher compares those integers instead of the
    frozensets themselves.
    """

    __slots__ = ("_by_level", "_all", "_hash", "_fingerprints")

    def __init__(self, packages: Iterable[Package] = ()) -> None:
        by_level: dict[PackageLevel, set[Package]] = {
            PackageLevel.OS: set(),
            PackageLevel.LANGUAGE: set(),
            PackageLevel.RUNTIME: set(),
        }
        for pkg in packages:
            by_level[pkg.level].add(pkg)
        self._by_level: dict[PackageLevel, FrozenSet[Package]] = {
            lvl: frozenset(s) for lvl, s in by_level.items()
        }
        self._all: FrozenSet[Package] = frozenset().union(*self._by_level.values())
        self._hash = hash(self._all)
        fingerprints = tuple(
            _intern_level(self._by_level[lvl]) for lvl in PackageLevel
        )
        self._fingerprints: Tuple[int, int, int] = _TUPLE_INTERN.setdefault(
            fingerprints, fingerprints
        )

    # -- set protocol -----------------------------------------------------
    def __iter__(self) -> Iterator[Package]:
        return iter(self._all)

    def __len__(self) -> int:
        return len(self._all)

    def __contains__(self, pkg: object) -> bool:
        return pkg in self._all

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackageSet):
            return NotImplemented
        return self._all == other._all

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{lvl.label}={sorted(p.key for p in self._by_level[lvl])}"
            for lvl in PackageLevel
        )
        return f"PackageSet({parts})"

    def __reduce__(self):
        """Pickle as the package list so fingerprints re-intern on load.

        Fingerprints are only meaningful within one process's intern table;
        reconstructing from packages keeps unpickled sets (e.g. in
        ``multiprocessing`` workers) consistent with locally built ones.
        """
        return (PackageSet, (list(self._all),))

    # -- fingerprints -------------------------------------------------------
    @property
    def level_fingerprints(self) -> Tuple[int, int, int]:
        """Interned per-level fingerprints ``(fp(L1), fp(L2), fp(L3))``.

        Within one process, ``a.level_fingerprints[i] ==
        b.level_fingerprints[i]`` holds exactly when the two sets' level
        ``i+1`` package sets are equal -- the O(1) form of Table-I
        whole-level equality.  The tuple itself is interned too: equal
        configurations return the *same object*, so ``a.level_fingerprints
        is b.level_fingerprints`` tests full (L3) equality.
        """
        return self._fingerprints

    # -- level access ------------------------------------------------------
    def level_set(self, level: PackageLevel) -> FrozenSet[Package]:
        """Return the (frozen) set of packages at ``level``."""
        return self._by_level[level]

    @property
    def os_packages(self) -> FrozenSet[Package]:
        return self._by_level[PackageLevel.OS]

    @property
    def language_packages(self) -> FrozenSet[Package]:
        return self._by_level[PackageLevel.LANGUAGE]

    @property
    def runtime_packages(self) -> FrozenSet[Package]:
        return self._by_level[PackageLevel.RUNTIME]

    # -- aggregates ---------------------------------------------------------
    @property
    def total_size_mb(self) -> float:
        """Total on-disk size of all packages.

        ``math.fsum`` keeps the result independent of the frozenset's
        hash-randomized iteration order (exactly-rounded summation), so
        sizes -- and everything derived from them -- are reproducible
        across processes.
        """
        return math.fsum(p.size_mb for p in self._all)

    def level_size_mb(self, level: PackageLevel) -> float:
        """Total on-disk size of the packages at ``level``."""
        return math.fsum(p.size_mb for p in self._by_level[level])

    def level_install_cost_s(self, level: PackageLevel) -> float:
        """Total extra install time of the packages at ``level``."""
        return math.fsum(p.install_cost_s for p in self._by_level[level])

    # -- construction helpers ------------------------------------------------
    def union(self, other: "PackageSet") -> "PackageSet":
        """Return a new set containing packages from both sets."""
        return PackageSet(list(self._all) + list(other._all))

    def names(self) -> FrozenSet[str]:
        """The set of package *keys* (name==version), used for Jaccard."""
        return frozenset(p.key for p in self._all)
