"""Automatic package-level classification (the paper's future work).

The paper relies on "predefined tags given by users or experts" to assign
packages to the OS / language / runtime levels and names an automated
classifier as future work (Section VIII).  This module implements that tool:
a heuristic classifier combining

1. **exact knowledge** -- names already in a catalog keep their tag;
2. **lexical rules** -- curated keyword families for OS bases, language
   stacks and well-known runtime libraries;
3. **structural hints** -- how the package was installed (``FROM`` -> OS,
   ``pip/npm/gem install`` -> runtime, source builds of interpreters ->
   language);
4. **a size prior** -- tie-breaks by typical footprints (OS bases and
   toolchains are large, runtime libraries usually small).

Every classification returns a confidence in ``[0, 1]`` so callers can route
low-confidence packages to a human, which is exactly how the paper's
expert-tag workflow would adopt the tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.packages.catalog import PackageCatalog
from repro.packages.package import PackageLevel

# Lexical families.  Matching is by substring on the lowercase name.
_OS_KEYWORDS = (
    "alpine", "debian", "ubuntu", "centos", "fedora", "busybox", "rocky",
    "suse", "arch", "glibc", "musl", "coreutils", "systemd", "openssl",
    "ca-certificates", "base-files", "linux",
)
_LANGUAGE_KEYWORDS = (
    "python", "openjdk", "jdk", "jre", "nodejs", "node", "golang", "rust",
    "ruby", "perl", "php", "dotnet", "erlang", "gcc", "clang", "toolchain",
    "pip", "npm", "maven", "gradle", "cargo", "composer", "interpreter",
    "runtime-env",
)
_RUNTIME_KEYWORDS = (
    "flask", "django", "express", "gin", "spring", "numpy", "pandas",
    "matplotlib", "scipy", "tensorflow", "torch", "sklearn", "redis-client",
    "sdk", "client", "lib", "framework", "requests", "axios",
)


class InstallHint:
    """How a package was installed (structural evidence)."""

    FROM_IMAGE = "from_image"          # Dockerfile FROM -> OS
    SYSTEM_PACKAGE = "system_package"  # apt/yum/apk -> OS-leaning
    SOURCE_BUILD = "source_build"      # configure/make of a stack -> language
    PACKAGE_MANAGER = "package_manager"  # pip/npm/gem -> runtime-leaning
    UNKNOWN = "unknown"

    ALL = (FROM_IMAGE, SYSTEM_PACKAGE, SOURCE_BUILD, PACKAGE_MANAGER, UNKNOWN)


@dataclass(frozen=True)
class Classification:
    """A classified package with supporting evidence."""

    name: str
    level: PackageLevel
    confidence: float
    evidence: Tuple[str, ...]

    @property
    def needs_review(self) -> bool:
        """Whether a human should double-check (low-confidence result)."""
        return self.confidence < 0.6


class PackageLevelClassifier:
    """Heuristic OS/language/runtime classifier with confidence scores."""

    def __init__(
        self,
        catalog: Optional[PackageCatalog] = None,
        review_threshold: float = 0.6,
    ) -> None:
        self.catalog = catalog
        self.review_threshold = review_threshold
        self._known: Dict[str, PackageLevel] = {}
        if catalog is not None:
            for pkg in catalog.all_packages():
                self._known[pkg.name.lower()] = pkg.level

    # -- public API ---------------------------------------------------------
    def classify(
        self,
        name: str,
        size_mb: Optional[float] = None,
        install_hint: str = InstallHint.UNKNOWN,
    ) -> Classification:
        """Classify one package name.

        Parameters
        ----------
        name:
            Package name (version suffixes like ``==1.2`` are ignored).
        size_mb:
            Optional size prior.
        install_hint:
            One of :class:`InstallHint`'s constants.
        """
        if install_hint not in InstallHint.ALL:
            raise ValueError(f"unknown install hint {install_hint!r}")
        base = name.split("==")[0].strip().lower()
        if not base:
            raise ValueError("package name must be non-empty")

        known = self._known.get(base)
        if known is not None:
            return Classification(base, known, 1.0, ("catalog",))

        scores = {lvl: 0.0 for lvl in PackageLevel}
        evidence: List[str] = []
        self._lexical(base, scores, evidence)
        self._structural(install_hint, scores, evidence)
        self._size_prior(size_mb, scores, evidence)

        total = sum(scores.values())
        if total == 0.0:
            # Nothing matched: runtime is the safest default (most packages
            # in real images are application libraries).
            return Classification(
                base, PackageLevel.RUNTIME, 0.34, ("default",)
            )
        level = max(scores, key=lambda lvl: (scores[lvl], -int(lvl)))
        confidence = scores[level] / total
        return Classification(base, level, confidence, tuple(evidence))

    def classify_many(
        self, names: Sequence[str], **kwargs
    ) -> List[Classification]:
        """Classify a batch of names with shared hints."""
        return [self.classify(n, **kwargs) for n in names]

    def review_queue(
        self, classifications: Sequence[Classification]
    ) -> List[Classification]:
        """The low-confidence subset a human expert should verify."""
        return [c for c in classifications
                if c.confidence < self.review_threshold]

    # -- scoring components ---------------------------------------------------
    @staticmethod
    def _lexical(base: str, scores: Dict, evidence: List[str]) -> None:
        for keyword in _OS_KEYWORDS:
            if keyword in base:
                scores[PackageLevel.OS] += 2.0
                evidence.append(f"lexical:os:{keyword}")
                break
        for keyword in _LANGUAGE_KEYWORDS:
            if keyword in base:
                scores[PackageLevel.LANGUAGE] += 2.0
                evidence.append(f"lexical:language:{keyword}")
                break
        for keyword in _RUNTIME_KEYWORDS:
            if keyword in base:
                scores[PackageLevel.RUNTIME] += 1.5
                evidence.append(f"lexical:runtime:{keyword}")
                break

    @staticmethod
    def _structural(hint: str, scores: Dict, evidence: List[str]) -> None:
        weights = {
            InstallHint.FROM_IMAGE: (3.0, 0.0, 0.0),
            InstallHint.SYSTEM_PACKAGE: (1.5, 0.5, 0.0),
            InstallHint.SOURCE_BUILD: (0.0, 2.0, 0.5),
            InstallHint.PACKAGE_MANAGER: (0.0, 0.25, 2.0),
            InstallHint.UNKNOWN: (0.0, 0.0, 0.0),
        }[hint]
        if any(weights):
            evidence.append(f"structural:{hint}")
        scores[PackageLevel.OS] += weights[0]
        scores[PackageLevel.LANGUAGE] += weights[1]
        scores[PackageLevel.RUNTIME] += weights[2]

    @staticmethod
    def _size_prior(
        size_mb: Optional[float], scores: Dict, evidence: List[str]
    ) -> None:
        if size_mb is None:
            return
        if size_mb >= 150.0:
            # Very large artifacts are OS bases or toolchains.
            scores[PackageLevel.OS] += 0.5
            scores[PackageLevel.LANGUAGE] += 0.75
            evidence.append("size:large")
        elif size_mb <= 20.0:
            scores[PackageLevel.RUNTIME] += 0.5
            evidence.append("size:small")
