"""Synthetic Docker Hub registry (reproduces the paper's Figure 3).

The paper's design rationale rests on one measurement: among the top-1000
most-pulled Docker Hub images, a handful of base (OS) images and language
images dominate -- the four most popular base images account for ~77 % of all
base-image pulls.  We cannot scrape Docker Hub offline, so this module builds
a *synthetic* registry whose popularity follows a Zipf law calibrated so that
the published aggregate holds.  The registry drives both the Figure 3
experiment and the popularity-weighted sampling in the Azure-like workload
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.packages.package import PackageLevel


@dataclass(frozen=True)
class RegistryImage:
    """One image in the synthetic registry."""

    name: str
    level: PackageLevel
    pull_count: int

    def __post_init__(self) -> None:
        if self.pull_count < 0:
            raise ValueError("pull_count must be >= 0")


# Named heads match the paper's Figure 3 discussion.
_BASE_IMAGE_NAMES = ["ubuntu", "alpine", "busybox", "centos", "debian", "fedora",
                     "amazonlinux", "archlinux", "opensuse", "rockylinux"]
_LANGUAGE_IMAGE_NAMES = ["python", "openjdk", "golang", "nodejs", "ruby", "php",
                         "rust", "erlang", "perl", "dotnet"]


class SyntheticRegistry:
    """A Zipf-popularity registry of images.

    Parameters
    ----------
    n_images:
        Total number of images to synthesize (the paper looks at the
        top-1000).
    zipf_exponent:
        Skew of the popularity distribution.  The default (1.2) makes the
        top-4 base images hold ~77 % of base-image pulls, matching Fig. 3.
    total_pulls:
        Total pull count mass to distribute.
    seed:
        Seed for the small amount of name-assignment randomness in the tail.
    """

    def __init__(
        self,
        n_images: int = 1000,
        zipf_exponent: float = 1.2,
        total_pulls: int = 10_000_000_000,
        seed: int = 0,
    ) -> None:
        if n_images < 10:
            raise ValueError("need at least 10 images")
        if zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        self.n_images = n_images
        self.zipf_exponent = zipf_exponent
        self.total_pulls = total_pulls
        self._rng = np.random.default_rng(seed)
        self._images = self._build()

    # -- construction -----------------------------------------------------
    def _build(self) -> List[RegistryImage]:
        # Partition the top-1000 into base / language / runtime strata; real
        # Docker Hub has many more runtime/application images than bases.
        n_base = min(len(_BASE_IMAGE_NAMES), max(4, self.n_images // 50))
        n_lang = min(len(_LANGUAGE_IMAGE_NAMES), max(4, self.n_images // 40))
        n_rt = self.n_images - n_base - n_lang

        images: List[RegistryImage] = []
        images += self._stratum(_BASE_IMAGE_NAMES[:n_base], PackageLevel.OS,
                                share=0.45)
        images += self._stratum(_LANGUAGE_IMAGE_NAMES[:n_lang],
                                PackageLevel.LANGUAGE, share=0.25)
        rt_names = [f"app-image-{i:04d}" for i in range(n_rt)]
        images += self._stratum(rt_names, PackageLevel.RUNTIME, share=0.30)
        return sorted(images, key=lambda im: -im.pull_count)

    def _stratum(
        self, names: Sequence[str], level: PackageLevel, share: float
    ) -> List[RegistryImage]:
        """Distribute ``share`` of total pulls over ``names`` by Zipf rank."""
        ranks = np.arange(1, len(names) + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_exponent)
        weights /= weights.sum()
        pulls = np.floor(weights * share * self.total_pulls).astype(np.int64)
        return [
            RegistryImage(name=n, level=level, pull_count=int(c))
            for n, c in zip(names, pulls)
        ]

    # -- queries ------------------------------------------------------------
    def images(self) -> List[RegistryImage]:
        """All images, most-pulled first."""
        return list(self._images)

    def images_at_level(self, level: PackageLevel) -> List[RegistryImage]:
        """All images of one package level, most-pulled first."""
        return [im for im in self._images if im.level == level]

    def top_k_share(self, level: PackageLevel, k: int) -> float:
        """Fraction of a level's pulls captured by its top-``k`` images.

        ``top_k_share(PackageLevel.OS, 4)`` reproduces the paper's 77 %
        headline statistic.
        """
        level_images = self.images_at_level(level)
        total = sum(im.pull_count for im in level_images)
        if total == 0:
            return 0.0
        top = sum(im.pull_count for im in level_images[:k])
        return top / total

    def popularity_weights(self, level: PackageLevel) -> Dict[str, float]:
        """Normalized pull-count weights per image name at ``level``."""
        level_images = self.images_at_level(level)
        total = sum(im.pull_count for im in level_images)
        if total == 0:
            uniform = 1.0 / max(len(level_images), 1)
            return {im.name: uniform for im in level_images}
        return {im.name: im.pull_count / total for im in level_images}
