"""Package model substrate.

Serverless function images are composed of *packages*.  Following the paper
(Section IV-A, Fig. 5), every package belongs to one of three levels:

* ``PackageLevel.OS`` (L1) -- base operating-system packages,
* ``PackageLevel.LANGUAGE`` (L2) -- language interpreter / compiler stacks,
* ``PackageLevel.RUNTIME`` (L3) -- application-specific runtime libraries.

This subpackage provides the :class:`~repro.packages.package.Package` value
type, a catalog of realistic package profiles used by FStartBench, a
Dockerfile-style parser that classifies lines into the three levels, the
Jaccard similarity metric used by the benchmark's Metric 1, and a synthetic
Docker Hub registry whose popularity skew is calibrated to the paper's
Figure 3 (top-4 base images account for roughly 77 % of all pulls).
"""

from repro.packages.package import Package, PackageLevel, PackageSet
from repro.packages.catalog import PackageCatalog, default_catalog
from repro.packages.dockerfile import DockerfileParser, ParsedDockerfile
from repro.packages.similarity import (
    jaccard_similarity,
    pairwise_mean_similarity,
    package_size_variance,
)
from repro.packages.registry import RegistryImage, SyntheticRegistry
from repro.packages.classifier import (
    Classification,
    InstallHint,
    PackageLevelClassifier,
)

__all__ = [
    "Package",
    "PackageLevel",
    "PackageSet",
    "PackageCatalog",
    "default_catalog",
    "DockerfileParser",
    "ParsedDockerfile",
    "jaccard_similarity",
    "pairwise_mean_similarity",
    "package_size_variance",
    "RegistryImage",
    "SyntheticRegistry",
    "Classification",
    "InstallHint",
    "PackageLevelClassifier",
]
