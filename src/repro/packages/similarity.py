"""Workload similarity and size-variance metrics (FStartBench Metrics 1 & 2).

Metric 1 (*function similarity*): the Jaccard coefficient of two functions'
package sets, ``|P1 n P2| / |P1 u P2|``.  FStartBench's LO-Sim workload has a
mean pairwise similarity of 0.29 and HI-Sim of 0.52.

Metric 2 (*package size*): the variance of package sizes across a workload's
function types; LO-Var is 54 and HI-Var is 769 in the paper.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.packages.package import PackageSet


def jaccard_similarity(a: PackageSet, b: PackageSet) -> float:
    """Jaccard similarity of two package sets over package keys.

    Returns 1.0 for two empty sets (identical by convention).
    """
    na, nb = a.names(), b.names()
    union = na | nb
    if not union:
        return 1.0
    return len(na & nb) / len(union)


def pairwise_mean_similarity(sets: Sequence[PackageSet]) -> float:
    """Mean Jaccard similarity over all unordered pairs.

    This is the paper's workload-level similarity figure (e.g. 0.29 for
    LO-Sim).  Returns 1.0 for fewer than two sets.
    """
    pairs = list(combinations(sets, 2))
    if not pairs:
        return 1.0
    return float(np.mean([jaccard_similarity(a, b) for a, b in pairs]))


def package_size_variance(sets: Iterable[PackageSet]) -> float:
    """Population variance of package sizes across all packages of a workload.

    The paper computes the variance "using the sizes of all packages in the
    workload"; duplicated packages across function types are counted once
    (they are the same package).
    """
    seen: dict[str, float] = {}
    for ps in sets:
        for pkg in ps:
            seen[pkg.key] = pkg.size_mb
    if not seen:
        return 0.0
    return float(np.var(np.array(list(seen.values()), dtype=np.float64)))
