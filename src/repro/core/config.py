"""MLCR configuration.

One dataclass gathering every knob of the DRL scheduler: state-encoding
sizes, policy-network architecture (Fig. 7), DQN hyperparameters and the
training loop's budget.  The defaults are CPU-sized; ``paper_scale()``
returns the configuration with the paper's published dimensions (512-wide
embedding, 2 heads, 2 attention layers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.drl.dqn import DQNConfig


@dataclass(frozen=True)
class MLCRConfig:
    """All hyperparameters of the MLCR scheduler.

    Parameters
    ----------
    n_slots:
        Maximum number of warm containers visible to the policy (the
        paper's ``n``; the action space is ``n + 1``).
    model_dim, n_heads, n_blocks, head_hidden:
        Policy-network architecture (Fig. 7).
    use_attention:
        ``False`` switches to the MLP ablation network.
    use_dueling:
        Use the dueling value/advantage decomposition over the attention
        trunk (requires ``use_attention``).
    use_mask:
        ``False`` disables the action mask (ablation); invalid actions are
        then interpreted as cold starts, as the paper specifies.
    dqn:
        Agent hyperparameters (gamma, lr, replay, target sync...).
    n_episodes:
        Training episodes (each episode replays one workload).
    epsilon_start, epsilon_end, epsilon_decay_steps:
        Linear exploration schedule.
    train_every:
        Gradient steps are taken every ``train_every`` decisions.
    n_step:
        n-step return length for TD targets (1 = plain DQN).  Multi-step
        targets propagate delayed costs faster but amplify off-policy bias
        from demonstration seeding; the default stays at 1.
    use_prioritized_replay:
        Replace uniform replay with TD-error-prioritized replay
        (importance-weighted).  Off by default; an ablation knob.
    demo_episodes:
        Episodes of heuristic demonstrations (Greedy-Match alternating with
        exact-match-only) used to seed the replay buffer before DQN
        training (0 disables seeding).
    eval_every:
        Run greedy (epsilon=0) validation episodes every ``eval_every``
        training episodes and snapshot the best network (0 disables
        checkpoint selection).
    eval_episodes:
        Validation episodes per evaluation point.
    reward_scale:
        Reward = ``-startup_latency_s * reward_scale``.
    shaping_coef:
        Strength of potential-based reward shaping (0 disables).  The
        potential is the demand-weighted warm value of the idle pool; see
        :mod:`repro.core.env`.
    load_features:
        Append aggregate cluster-load features (worker loads, startup
        queue depths) to the encoder's global segment.  Useful when
        training against a simulator with a finite ``worker_concurrency``;
        off by default so the historical state layout is unchanged.
    dtype:
        Compute/storage precision of the Q-networks, optimizer state and
        replay buffer: ``"float32"`` (default -- the fast path; the
        networks are small enough that float32 loses no training quality)
        or ``"float64"`` (full precision, the historical behaviour).
    batched_rollouts:
        Run no-learning episodes (demonstration seeding, validation) as
        one lockstep batch sharing a single forward per step (default).
        ``False`` rolls them out one episode at a time -- the historical
        sequential path, kept as the differential-testing reference
        (:mod:`repro.verify.differential` cross-checks the two).
    seed:
        Master seed for network init, exploration and replay sampling.
    """

    n_slots: int = 16
    model_dim: int = 64
    n_heads: int = 2
    n_blocks: int = 2
    head_hidden: int = 64
    use_attention: bool = True
    use_dueling: bool = False
    use_mask: bool = True
    dqn: DQNConfig = field(default_factory=DQNConfig)
    n_episodes: int = 30
    epsilon_start: float = 0.9
    epsilon_end: float = 0.02
    epsilon_decay_steps: int = 6000
    train_every: int = 2
    n_step: int = 1
    use_prioritized_replay: bool = False
    demo_episodes: int = 3
    eval_every: int = 4
    eval_episodes: int = 2
    reward_scale: float = 0.1
    shaping_coef: float = 1.0
    load_features: bool = False
    dtype: str = "float32"
    batched_rollouts: bool = True
    seed: int = 0

    @property
    def np_dtype(self) -> np.dtype:
        """The configured precision as a numpy dtype."""
        return np.dtype(self.dtype)

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if self.n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        if self.train_every < 1:
            raise ValueError("train_every must be >= 1")
        if self.n_step < 1:
            raise ValueError("n_step must be >= 1")
        if self.demo_episodes < 0:
            raise ValueError("demo_episodes must be >= 0")
        if self.eval_every < 0 or self.eval_episodes < 0:
            raise ValueError("eval_every and eval_episodes must be >= 0")
        if self.reward_scale <= 0:
            raise ValueError("reward_scale must be positive")
        if self.shaping_coef < 0:
            raise ValueError("shaping_coef must be >= 0")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")

    @staticmethod
    def paper_scale() -> "MLCRConfig":
        """The published network dimensions (Section IV-B, Fig. 7)."""
        return MLCRConfig(model_dim=512, n_heads=2, n_blocks=2, head_hidden=512)

    def fast(self) -> "MLCRConfig":
        """A reduced-budget variant for benchmarks and smoke tests."""
        return replace(
            self,
            n_episodes=max(4, self.n_episodes // 6),
            demo_episodes=min(2, self.demo_episodes),
            epsilon_decay_steps=max(500, self.epsilon_decay_steps // 6),
        )
