"""MLCR: the DRL-based multi-level container scheduler.

:class:`MLCRScheduler` wraps a trained DQN agent behind the standard
:class:`~repro.schedulers.base.Scheduler` interface so it can be compared
head-to-head with the baselines in the same simulator.  At serving time the
policy is deterministic (epsilon = 0) and masked, and each decision is a
single forward pass -- the "3-4 ms inference" path of Section VI-D.

:func:`train_mlcr_scheduler` is the one-call entry point used by the
experiments: build encoder + environment, run Algorithm 1, return the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.eviction import LRUEviction
from repro.cluster.simulator import SimulationConfig
from repro.core.config import MLCRConfig
from repro.core.env import SchedulingEnv
from repro.core.state import StateEncoder
from repro.core.trainer import MLCRTrainer, TrainingHistory
from repro.drl.dqn import DQNAgent
from repro.packages.catalog import PackageCatalog
from repro.schedulers.base import Decision, Scheduler, SchedulingContext
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class CandidateRow:
    """One container candidate in a decision explanation."""

    container_id: Optional[int]
    match: object
    q_value: float
    masked: bool


@dataclass(frozen=True)
class DecisionExplanation:
    """Why MLCR chose what it chose: Q-values for every candidate."""

    rows: list
    cold_q: float
    decision: Decision

    def render(self) -> str:
        """Human-readable table of the candidate Q-values."""
        lines = ["slot | container | match    | Q        | masked"]
        for i, row in enumerate(self.rows):
            cid = "-" if row.container_id is None else str(row.container_id)
            lines.append(
                f"{i:4d} | {cid:>9s} | {getattr(row.match, 'name', '-'):8s} "
                f"| {row.q_value:8.3f} | {'yes' if row.masked else 'no'}"
            )
        lines.append(f"cold | {'-':>9s} | {'-':8s} | {self.cold_q:8.3f} | no")
        chosen = ("cold start" if self.decision.is_cold
                  else f"container {self.decision.container_id}")
        lines.append(f"chosen: {chosen}")
        return "\n".join(lines)


class MLCRScheduler(Scheduler):
    """Serve scheduling decisions from a trained masked DQN."""

    name = "MLCR"

    def __init__(self, agent: DQNAgent, encoder: StateEncoder,
                 use_mask: bool = True) -> None:
        self.agent = agent
        self.encoder = encoder
        self.use_mask = use_mask
        self.decisions_made = 0
        # Distilled fast path (attach_surrogate); counters feed telemetry.
        self.surrogate = None
        self.surrogate_audit_every = 0
        self.surrogate_fallbacks = 0
        self.surrogate_audits = 0
        self.surrogate_disagreements = 0

    @staticmethod
    def make_eviction_policy() -> LRUEviction:
        """MLCR pairs with LRU eviction (paper Section III)."""
        return LRUEviction()

    def attach_surrogate(self, surrogate, audit_every: int = 64) -> None:
        """Serve decisions from a distilled surrogate instead of the network.

        ``surrogate`` is a :class:`~repro.drl.distill.TreeSurrogate` (or
        anything with its ``act(state, mask)`` contract).  Decisions whose
        prediction the live action mask forbids fall back to the full
        network (counted in ``surrogate_fallbacks``).  Every
        ``audit_every``-th surrogate decision is additionally checked
        against the network's greedy action; mismatches increment
        ``surrogate_disagreements`` (the drift signal telemetry surfaces)
        while the surrogate's choice still stands, keeping the audit
        observational.  ``audit_every=0`` disables auditing;
        ``audit_every=1`` audits every decision.
        """
        if audit_every < 0:
            raise ValueError("audit_every must be >= 0")
        self.surrogate = surrogate
        self.surrogate_audit_every = audit_every

    def detach_surrogate(self) -> None:
        """Return to full-network decisions."""
        self.surrogate = None

    def reset(self) -> None:
        """Clear per-run state (the attached surrogate survives)."""
        self.encoder.reset()
        self.decisions_made = 0
        self.surrogate_fallbacks = 0
        self.surrogate_audits = 0
        self.surrogate_disagreements = 0

    def act_surrogate(self, state: np.ndarray, mask: np.ndarray) -> int:
        """Surrogate action with mask-invalid fallback and periodic audit."""
        action = self.surrogate.act(state, mask)
        if action is None:
            self.surrogate_fallbacks += 1
            return self.agent.act(state, mask, epsilon=0.0)
        every = self.surrogate_audit_every
        if every and self.decisions_made % every == 0:
            self.surrogate_audits += 1
            if action != self.agent.act(state, mask, epsilon=0.0):
                self.surrogate_disagreements += 1
        return action

    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        encoded = self.encoder.encode(ctx)
        mask = encoded.mask if self.use_mask else np.ones_like(encoded.mask)
        if self.surrogate is not None:
            action = self.act_surrogate(encoded.state, mask)
        else:
            action = self.agent.act(encoded.state, mask, epsilon=0.0)
        self.decisions_made += 1
        return encoded.decision_for(action)

    def explain(self, ctx: SchedulingContext) -> "DecisionExplanation":
        """Dry-run a decision and expose the Q-values behind it.

        Does not advance the encoder's arrival tracking or the decision
        counter, so it can be called freely for debugging/observability.
        Returns per-candidate rows (container id, Table-I match, Q-value,
        masked flag) plus the cold-start row and the chosen action.
        """
        saved_arrival = self.encoder._last_arrival
        saved_demand = dict(self.encoder._image_demand)
        saved_total = self.encoder._demand_total
        try:
            encoded = self.encoder.encode(ctx)
        finally:
            self.encoder._last_arrival = saved_arrival
            self.encoder._image_demand = saved_demand
            self.encoder._demand_total = saved_total
        mask = encoded.mask if self.use_mask else np.ones_like(encoded.mask)
        q = self.agent.q_values(encoded.state)
        rows = []
        for slot, container_id in enumerate(encoded.slot_containers):
            rows.append(CandidateRow(
                container_id=container_id,
                match=encoded.slot_matches[slot],
                q_value=float(q[slot]),
                masked=not bool(mask[slot]),
            ))
        cold_q = float(q[-1])
        valid = np.where(mask, q, -np.inf)
        chosen = encoded.decision_for(int(valid.argmax()))
        return DecisionExplanation(rows=rows, cold_q=cold_q, decision=chosen)


def train_mlcr_scheduler(
    workload_factory: Callable[[int], Workload],
    sim_config: SimulationConfig,
    config: MLCRConfig | None = None,
    catalog: Optional[PackageCatalog] = None,
    verbose: bool = False,
) -> tuple[MLCRScheduler, TrainingHistory]:
    """Train MLCR on a workload distribution and return the scheduler.

    Parameters
    ----------
    workload_factory:
        Maps an episode index to a workload (e.g. different seeds of the
        same FStartBench workload family -- the paper's offline training
        data).
    sim_config:
        The cluster the policy will be deployed on (pool capacity matters:
        train on the capacity you evaluate with).
    config:
        MLCR hyperparameters; defaults to :class:`MLCRConfig`.
    """
    cfg = config or MLCRConfig()
    encoder = StateEncoder(
        n_slots=cfg.n_slots, catalog=catalog, load_features=cfg.load_features
    )
    env = SchedulingEnv(
        workload_factory=workload_factory,
        sim_config=sim_config,
        encoder=encoder,
        eviction_factory=LRUEviction,
        reward_scale=cfg.reward_scale,
        shaping_coef=cfg.shaping_coef,
        gamma=cfg.dqn.gamma,
    )
    trainer = MLCRTrainer(env, cfg, encoder)
    history = trainer.train(verbose=verbose)
    scheduler = MLCRScheduler(trainer.agent, encoder, use_mask=cfg.use_mask)
    return scheduler, history
