"""Gym-style environment over the cluster simulator.

One environment step = one scheduling decision (the paper's MDP): the state
is the encoded decision point, the action picks a container slot or cold
start, and the reward is the negative startup latency of the resulting start
(``r_t = -lt``, Section IV-B).  Episode = one full workload.

Optionally the reward is augmented with **potential-based shaping**
(Ng, Harada & Russell, 1999): the potential of a pool state is the
demand-weighted warm value of its idle containers,

    phi(s) = sum_c demand(stack_c) * (cold(stack_c) - warm(stack_c)),

and the shaped reward is ``r + gamma * phi(s') - phi(s)``.  Repacking a
container whose stack is hot in the arrival stream *lowers* the potential,
so the long-horizon externality of greedy reuse (the paper's Fig. 2) shows
up immediately in the reward while the optimal policy of the underlying MDP
is provably unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.eviction import EvictionPolicy, LRUEviction
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.core.state import EncodedState, StateEncoder
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class StepResult:
    """Outcome of one environment step.

    ``queue_delay_s`` is the portion of ``startup_latency_s`` spent
    waiting for a worker concurrency slot (0 unless the simulator
    enforces a ``worker_concurrency`` limit).
    """

    state: Optional[EncodedState]   # next decision point (None when done)
    reward: float
    done: bool
    startup_latency_s: float
    cold_start: bool
    queue_delay_s: float = 0.0


class SchedulingEnv:
    """Drives the simulator one scheduling decision at a time.

    Parameters
    ----------
    workload_factory:
        Called with the episode index; returns the workload to replay.
        Passing different seeds per episode trains across a workload
        *distribution* instead of memorizing one trace.
    sim_config:
        Cluster configuration (pool capacity, cost model).
    encoder:
        State encoder (shared with the eventual :class:`MLCRScheduler` so
        training and serving observe identical features).
    eviction_factory:
        Builds the eviction policy per episode (LRU in the paper).
    reward_scale:
        Reward = ``-latency * reward_scale``.
    """

    def __init__(
        self,
        workload_factory: Callable[[int], Workload],
        sim_config: SimulationConfig,
        encoder: StateEncoder,
        eviction_factory: Callable[[], EvictionPolicy] = LRUEviction,
        reward_scale: float = 0.1,
        shaping_coef: float = 0.0,
        gamma: float = 0.99,
    ) -> None:
        self.workload_factory = workload_factory
        self.sim_config = sim_config
        self.encoder = encoder
        self.eviction_factory = eviction_factory
        self.reward_scale = reward_scale
        self.shaping_coef = shaping_coef
        self.gamma = gamma
        self._sim: Optional[ClusterSimulator] = None
        self._episode = -1
        self._phi = 0.0
        self._stack_saving_cache: dict = {}

    def spawn(self) -> "SchedulingEnv":
        """A fresh environment over the same configuration.

        The spawn gets its **own encoder clone** (arrival tracking and
        demand features are per-episode state), so several spawns can run
        episodes in lockstep -- the batched validation/demonstration
        rollouts of :class:`~repro.core.trainer.MLCRTrainer` -- without
        cross-contaminating each other's features.
        """
        return SchedulingEnv(
            workload_factory=self.workload_factory,
            sim_config=self.sim_config,
            encoder=self.encoder.clone(),
            eviction_factory=self.eviction_factory,
            reward_scale=self.reward_scale,
            shaping_coef=self.shaping_coef,
            gamma=self.gamma,
        )

    # -- episode control -----------------------------------------------------
    def reset(self, episode: Optional[int] = None) -> Optional[EncodedState]:
        """Start a new episode; returns the first decision point.

        Returns ``None`` for an empty workload.
        """
        self._episode = self._episode + 1 if episode is None else episode
        workload = self.workload_factory(self._episode)
        self._sim = ClusterSimulator(self.sim_config, self.eviction_factory())
        self._sim.load(workload)
        self.encoder.reset()
        ctx = self._sim.next_decision_point()
        if ctx is None:
            return None
        encoded = self.encoder.encode(ctx)
        self._phi = self._potential()
        return encoded

    def step(self, action: int, encoded: EncodedState) -> StepResult:
        """Apply ``action`` (interpreted against ``encoded``'s slot map)."""
        if self._sim is None:
            raise RuntimeError("call reset() before step()")
        decision = encoded.decision_for(action)
        record = self._sim.apply_decision(decision)
        reward = -record.startup_latency_s * self.reward_scale
        ctx = self._sim.next_decision_point()
        if ctx is None:
            if self.shaping_coef:
                reward += 0.0 - self._phi  # phi(terminal) = 0
            return StepResult(
                state=None,
                reward=reward,
                done=True,
                startup_latency_s=record.startup_latency_s,
                cold_start=record.cold_start,
                queue_delay_s=record.queue_delay_s,
            )
        next_state = self.encoder.encode(ctx)
        if self.shaping_coef:
            phi_next = self._potential()
            reward += self.gamma * phi_next - self._phi
            self._phi = phi_next
        return StepResult(
            state=next_state,
            reward=reward,
            done=False,
            startup_latency_s=record.startup_latency_s,
            cold_start=record.cold_start,
            queue_delay_s=record.queue_delay_s,
        )

    # -- potential-based shaping -------------------------------------------
    def _stack_saving(self, image) -> float:
        """Cold-minus-warm latency of a container's stack (cached)."""
        key = image.packages
        saving = self._stack_saving_cache.get(key)
        if saving is None:
            from repro.containers.matching import MatchLevel

            model = self.sim_config.cost_model
            saving = model.latency_s(image, MatchLevel.NO_MATCH, 0.0) - (
                model.latency_s(image, MatchLevel.L3, 0.0)
            )
            self._stack_saving_cache[key] = saving
        return saving

    def _potential(self) -> float:
        """Demand-weighted warm value of the current idle pool."""
        if not self.shaping_coef or self._sim is None:
            return 0.0
        phi = 0.0
        for container in self._sim.pool.containers():
            demand = self.encoder._demand_of(container.image.packages)
            phi += demand * self._stack_saving(container.image)
        return phi * self.reward_scale * self.shaping_coef

    def finish(self, scheduler_name: str = "MLCR-train") -> SimulationResult:
        """Drain the simulator after the final decision of an episode."""
        if self._sim is None:
            raise RuntimeError("no active episode")
        result = self._sim.finish(scheduler_name)
        self._sim = None
        return result
