"""Save/load trained MLCR schedulers.

The paper trains offline (hours on a V100) and serves the trained model at
runtime; that workflow needs persistence.  A saved policy bundles the
Q-network weights with the architecture and encoder configuration needed to
rebuild an identical scheduler, in a single ``.npz`` file (pickle-free: only
arrays and a JSON metadata string).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import MLCRConfig
from repro.core.mlcr import MLCRScheduler
from repro.core.state import StateEncoder
from repro.drl.attention import migrate_unfused_qkv_state
from repro.drl.dqn import DQNAgent, DQNConfig
from repro.drl.network import AttentionQNetwork, MLPQNetwork, QNetwork

#: Version 2 fuses each attention layer's Q/K/V projections into one
#: ``(D, 3D)`` tensor and records the compute dtype.  Version-1 files (the
#: unfused float64 layout) still load through the migration shim.
FORMAT_VERSION = 2


def _network_factory(cfg: MLCRConfig, encoder: StateEncoder):
    from repro.drl.network import DuelingAttentionQNetwork

    def factory() -> QNetwork:
        rng = np.random.default_rng(cfg.seed + 2)
        if cfg.use_attention:
            cls = (DuelingAttentionQNetwork if cfg.use_dueling
                   else AttentionQNetwork)
            return cls(
                global_dim=encoder.global_dim,
                slot_dim=encoder.slot_dim,
                n_slots=encoder.n_slots,
                rng=rng,
                model_dim=cfg.model_dim,
                n_heads=cfg.n_heads,
                n_blocks=cfg.n_blocks,
                head_hidden=cfg.head_hidden,
                dtype=cfg.np_dtype,
            )
        return MLPQNetwork(
            global_dim=encoder.global_dim,
            slot_dim=encoder.slot_dim,
            n_slots=encoder.n_slots,
            rng=rng,
            hidden=cfg.model_dim * 2,
            dtype=cfg.np_dtype,
        )

    return factory


def save_scheduler(
    scheduler: MLCRScheduler,
    config: MLCRConfig,
    path: Union[str, Path],
) -> Path:
    """Serialize a trained scheduler to ``path`` (``.npz``).

    ``config`` must be the configuration the scheduler was trained with --
    it defines the network architecture that the weights fit.
    """
    path = Path(path)
    meta = {
        "format_version": FORMAT_VERSION,
        "n_slots": scheduler.encoder.n_slots,
        "mask_dominated": scheduler.encoder.mask_dominated,
        "use_mask": scheduler.use_mask,
        "config": {
            "n_slots": config.n_slots,
            "model_dim": config.model_dim,
            "n_heads": config.n_heads,
            "n_blocks": config.n_blocks,
            "head_hidden": config.head_hidden,
            "use_attention": config.use_attention,
            "use_dueling": config.use_dueling,
            "dtype": config.dtype,
            "seed": config.seed,
        },
    }
    arrays = {
        f"param_{key}": value
        for key, value in scheduler.agent.online.state_dict().items()
    }
    np.savez(path, _meta=np.array(json.dumps(meta)), **arrays)
    return path


def load_scheduler(path: Union[str, Path]) -> MLCRScheduler:
    """Rebuild a scheduler saved with :func:`save_scheduler`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["_meta"]))
        version = meta.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise ValueError(f"unsupported policy file version {version}")
        state = {
            key[len("param_"):]: data[key]
            for key in data.files
            if key.startswith("param_")
        }
    cfg_meta = meta["config"]
    config = MLCRConfig(
        n_slots=cfg_meta["n_slots"],
        model_dim=cfg_meta["model_dim"],
        n_heads=cfg_meta["n_heads"],
        n_blocks=cfg_meta["n_blocks"],
        head_hidden=cfg_meta["head_hidden"],
        use_attention=cfg_meta["use_attention"],
        use_dueling=cfg_meta.get("use_dueling", False),
        # Version-1 checkpoints were trained in float64; keep serving them
        # at full precision so their decisions are bit-identical.
        dtype=cfg_meta.get("dtype", "float64"),
        seed=cfg_meta["seed"],
    )
    encoder = StateEncoder(
        n_slots=meta["n_slots"], mask_dominated=meta["mask_dominated"]
    )
    agent = DQNAgent(
        network_factory=_network_factory(config, encoder),
        config=DQNConfig(),
        rng=np.random.default_rng(config.seed + 1),
    )
    if version == 1:
        # Old layout: separate w_q/w_k/w_v linears per attention layer.
        state = migrate_unfused_qkv_state(state, agent.online)
    agent.online.load_state_dict(state)
    agent.sync_target()
    return MLCRScheduler(agent, encoder, use_mask=meta["use_mask"])
