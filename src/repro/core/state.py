"""State encoding and action masking for the DRL scheduler.

The paper's state (Section IV-B) combines workload-related features (the
function's three package levels, arrival interval) with system-related
features (per-container package/status information and cluster-wide pool
state).  We encode them as:

* a **global segment**: bag-of-packages vector of the invoked function over
  the catalog, its init time/size/memory, the arrival interval, and
  cluster-wide pool features;
* ``n_slots`` **container segments**: presence flag, Table-I match level
  (one-hot), estimated reuse latency and saving vs. cold (the Fig. 2 table,
  computed from the cost model), idle duration, memory, the size of the
  runtime payload that repacking would discard, and how many other idle
  containers offer at least the same match depth (redundancy -- taking a
  redundant container is free, taking the only deep match is not).

Container slots are filled deepest-match-first so that the most relevant
candidates are always visible even when the pool holds more than
``n_slots`` idle containers.  The **action mask** marks reusable slots plus
the always-valid cold action (paper Section IV-C: "no match" containers are
filtered out rather than explored).

Encoding is incremental: bag-of-packages vectors and cost-model latencies
are cached per image configuration, per-depth idle counts come from the
warm pool's match index (``ctx.match_counts``), the redundancy feature uses
precomputed suffix sums, and candidate ranking is a partial selection of
the top ``n_slots`` instead of a full sort.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.containers.container import Container
from repro.containers.matching import MatchLevel, match_level
from repro.packages.catalog import PackageCatalog, default_catalog
from repro.packages.package import PackageLevel
from repro.schedulers.base import Decision, SchedulingContext

# Feature-scaling constants: chosen so typical values land in ~[0, 3].
_LATENCY_SCALE = 0.1     # seconds -> tenths of ten-seconds
_MEMORY_SCALE = 1e-3     # MB -> GB
_INIT_SCALE = 0.5


@dataclass(frozen=True)
class EncodedState:
    """The encoder's output for one decision point."""

    state: np.ndarray                 # flat (global_dim + n_slots * slot_dim,)
    mask: np.ndarray                  # (n_slots + 1,) bool; last = cold start
    slot_containers: Tuple[Optional[int], ...]  # slot index -> container id
    slot_matches: Tuple[MatchLevel, ...]        # slot index -> match level

    def decision_for(self, action: int) -> Decision:
        """Translate a (possibly invalid) action index into a Decision.

        Following the paper ("if i is larger than the actual number of warm
        containers ... it also means cold start"), actions pointing at an
        empty slot or at a no-match container fall back to a cold start --
        this is what makes running without the action mask well-defined.
        """
        if action < 0 or action > len(self.slot_containers):
            raise ValueError(f"action {action} out of range")
        if action == len(self.slot_containers):
            return Decision.cold()
        container_id = self.slot_containers[action]
        if container_id is None or not self.slot_matches[action].is_reusable:
            return Decision.cold()
        return Decision.warm(container_id)


class StateEncoder:
    """Encode :class:`SchedulingContext` objects into fixed-size vectors."""

    SLOT_DIM = 12
    #: Exponential decay applied to per-image arrival counts at each arrival;
    #: the resulting "demand" features tell the policy how hot a container's
    #: current stack is in the recent workload (the temporal signal the
    #: paper's DRL learns from arrival patterns).
    DEMAND_DECAY = 0.97

    def __init__(
        self,
        n_slots: int,
        catalog: PackageCatalog | None = None,
        mask_dominated: bool = True,
        load_features: bool = False,
    ) -> None:
        """``mask_dominated`` extends the paper's action mask with a
        dominance rule: when a full (L3) match is available, shallower
        reuses are filtered out as manifestly erroneous -- the L3 reuse is
        both the cheapest start *and* destroys no warm state, because the
        container already holds exactly the function's stack.

        ``load_features`` appends six aggregate cluster-load scalars
        (worker container loads and startup queue depths from
        ``ctx.worker_loads`` / ``ctx.queue_depths``) to the global
        segment.  Aggregates, not per-worker values, so the state
        dimension is independent of ``n_workers`` and one trained policy
        transfers across cluster sizes.  Off by default: the historical
        encoding is bit-for-bit unchanged."""
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.n_slots = n_slots
        self.mask_dominated = mask_dominated
        self.load_features = load_features
        self.catalog = catalog or default_catalog()
        self._key_index: Dict[str, int] = {
            key: i for i, key in enumerate(self.catalog.key_order())
        }
        self._n_keys = len(self._key_index)
        self._last_arrival: Optional[float] = None
        self._image_demand: Dict[object, float] = {}
        self._demand_total = 0.0
        # Image-keyed caches.  Both survive reset(): they depend only on
        # the (immutable) image configurations and the cost model, not on
        # episode state; the latency cache is invalidated when a context
        # carries a different cost-model instance.
        self._bag_cache: Dict[object, np.ndarray] = {}
        self._latency_cache: Dict[Tuple, float] = {}
        self._latency_model: Optional[object] = None

    # -- dimensions --------------------------------------------------------
    @property
    def global_dim(self) -> int:
        # bag-of-packages + 8 scalars + per-match-level idle counts (4),
        # plus 6 aggregate cluster-load scalars when enabled.
        return self._n_keys + 8 + 4 + (6 if self.load_features else 0)

    @property
    def slot_dim(self) -> int:
        return self.SLOT_DIM

    @property
    def state_dim(self) -> int:
        return self.global_dim + self.n_slots * self.slot_dim

    @property
    def action_dim(self) -> int:
        return self.n_slots + 1

    def clone(self) -> "StateEncoder":
        """A fresh encoder with the same configuration (and shared caches).

        The clone has independent episode state (arrival tracking, demand
        counters) but shares the immutable-valued bag-of-packages cache, so
        lockstep rollouts do not re-derive package vectors per clone.
        """
        clone = StateEncoder(
            n_slots=self.n_slots,
            catalog=self.catalog,
            mask_dominated=self.mask_dominated,
            load_features=self.load_features,
        )
        clone._bag_cache = self._bag_cache
        return clone

    # -- lifecycle ------------------------------------------------------------
    def reset(self) -> None:
        """Forget the previous arrivals (call at episode start)."""
        self._last_arrival = None
        self._image_demand.clear()
        self._demand_total = 0.0

    def _demand_of(self, packages: object) -> float:
        """Recent-arrival share of an image configuration (0..1)."""
        if self._demand_total <= 0:
            return 0.0
        return self._image_demand.get(packages, 0.0) / self._demand_total

    def _observe_arrival(self, packages: object) -> None:
        decay = self.DEMAND_DECAY
        for key in list(self._image_demand):
            self._image_demand[key] *= decay
        self._demand_total *= decay
        self._image_demand[packages] = self._image_demand.get(packages, 0.0) + 1.0
        self._demand_total += 1.0

    # -- encoding ----------------------------------------------------------
    def encode(self, ctx: SchedulingContext) -> EncodedState:
        """Encode one decision point; advances the arrival-interval tracker."""
        interval = (
            0.0 if self._last_arrival is None else ctx.now - self._last_arrival
        )
        self._last_arrival = ctx.now

        self._observe_arrival(ctx.invocation.spec.image.packages)
        ranked = self._ranked_candidates(ctx)
        # Per-depth idle counts come from the pool match index when the
        # context carries one (ctx.match_counts) instead of re-scoring
        # every idle container.
        counts = ctx.match_counts()
        depth_counts = np.array(
            [float(counts[lvl]) for lvl in MatchLevel], dtype=np.float64
        )
        # Suffix sums: redundancy_suffix[m] = idle containers matching at
        # least as deep as level m (precomputed once per decision point).
        redundancy_suffix = np.cumsum(depth_counts[::-1])[::-1]
        global_part = self._global_features(ctx, interval, depth_counts)
        slot_parts = np.zeros((self.n_slots, self.slot_dim))
        mask = np.zeros(self.action_dim, dtype=bool)
        mask[-1] = True  # cold start is always allowed
        slot_ids: List[Optional[int]] = [None] * self.n_slots
        slot_matches: List[MatchLevel] = [MatchLevel.NO_MATCH] * self.n_slots
        cold_latency = self._cached_latency(ctx, MatchLevel.NO_MATCH)
        for slot, (container, match) in enumerate(ranked):
            # Idle containers matching at least as deep as this one, besides
            # itself: >0 means taking this container costs nothing.
            redundancy = float(redundancy_suffix[int(match)] - 1)
            slot_parts[slot] = self._slot_features(
                ctx, container, match, cold_latency, redundancy
            )
            slot_ids[slot] = container.container_id
            slot_matches[slot] = match
            if match.is_reusable:
                mask[slot] = True

        if self.mask_dominated and MatchLevel.L3 in slot_matches:
            for slot, match in enumerate(slot_matches):
                if match.is_reusable and match is not MatchLevel.L3:
                    mask[slot] = False

        state = np.concatenate([global_part, slot_parts.reshape(-1)])
        return EncodedState(
            state=state,
            mask=mask,
            slot_containers=tuple(slot_ids),
            slot_matches=tuple(slot_matches),
        )

    # -- internals -----------------------------------------------------------
    def _bag_of_packages(self, ctx: SchedulingContext) -> np.ndarray:
        packages = ctx.invocation.spec.image.packages
        bag = self._bag_cache.get(packages)
        if bag is None:
            bag = np.zeros(self._n_keys)
            for pkg in packages:
                idx = self._key_index.get(pkg.key)
                if idx is not None:
                    bag[idx] = 1.0
            self._bag_cache[packages] = bag
        # Callers only read the vector (np.concatenate copies), so the
        # cached array can be shared.
        return bag

    def _cached_latency(
        self,
        ctx: SchedulingContext,
        match: MatchLevel,
        function_init_s: Optional[float] = None,
    ) -> float:
        """Cost-model latency cached per ``(image, match, function_init_s)``."""
        if ctx.cost_model is not self._latency_model:
            self._latency_model = ctx.cost_model
            self._latency_cache.clear()
        spec = ctx.invocation.spec
        init_s = spec.function_init_s if function_init_s is None else function_init_s
        key = (spec.image.fingerprints, int(match), init_s)
        latency = self._latency_cache.get(key)
        if latency is None:
            latency = ctx.cost_model.latency_s(spec.image, match, init_s)
            self._latency_cache[key] = latency
        return latency

    def _global_features(
        self, ctx: SchedulingContext, interval: float, depth_counts: np.ndarray
    ) -> np.ndarray:
        spec = ctx.invocation.spec
        capacity = ctx.pool_capacity_mb
        free_frac = (
            1.0
            if not np.isfinite(capacity)
            else max(0.0, (capacity - ctx.pool_used_mb)) / max(capacity, 1.0)
        )
        scalars = np.array(
            [
                spec.function_init_s * _INIT_SCALE,
                spec.image.total_size_mb * _MEMORY_SCALE,
                spec.image.memory_mb * _MEMORY_SCALE,
                np.log1p(interval),
                free_frac,
                len(ctx.idle_containers) / self.n_slots,
                self._cached_latency(ctx, MatchLevel.NO_MATCH) * _LATENCY_SCALE,
                self._demand_of(spec.image.packages),
            ]
        )
        parts = [self._bag_of_packages(ctx), scalars,
                 depth_counts / self.n_slots]
        if self.load_features:
            parts.append(self._load_features(ctx))
        return np.concatenate(parts)

    def _load_features(self, ctx: SchedulingContext) -> np.ndarray:
        """Aggregate cluster-load scalars (independent of ``n_workers``).

        Log-compressed means/maxima of per-worker container loads and
        startup queue depths, plus the fraction of workers hosting at
        least one container and the total queued-startup count.  Empty
        load views (hand-built contexts) encode as all zeros.
        """
        loads = np.asarray(ctx.worker_loads, dtype=np.float64)
        queues = np.asarray(ctx.queue_depths, dtype=np.float64)
        return np.array(
            [
                np.log1p(loads.mean()) if loads.size else 0.0,
                np.log1p(loads.max()) if loads.size else 0.0,
                float((loads > 0).mean()) if loads.size else 0.0,
                np.log1p(queues.mean()) if queues.size else 0.0,
                np.log1p(queues.max()) if queues.size else 0.0,
                np.log1p(queues.sum()) if queues.size else 0.0,
            ]
        )

    def _ranked_candidates(
        self, ctx: SchedulingContext
    ) -> List[Tuple[Container, MatchLevel]]:
        """Top ``n_slots`` idle containers, deepest-match first, then most
        recent.

        Partial selection (``heapq.nsmallest``) instead of a full sort:
        only the ``n_slots`` visible candidates are ordered, O(n log k)
        over the pool instead of O(n log n).
        """
        image = ctx.invocation.spec.image
        # idle_containers is LRU-first; enumerate() index preserves recency.
        # The 4-tuples order by (depth, recency) alone -- the recency index
        # is unique, so the trailing elements are never compared.
        scored = [
            (-int(match_level(image, container.image)), -recency,
             container.container_id, container)
            for recency, container in enumerate(ctx.idle_containers)
        ]
        top = heapq.nsmallest(self.n_slots, scored)
        return [
            (container, MatchLevel(-neg_match))
            for neg_match, _, _, container in top
        ]

    def _slot_features(
        self,
        ctx: SchedulingContext,
        container: Container,
        match: MatchLevel,
        cold_latency: float,
        redundancy: float,
    ) -> np.ndarray:
        one_hot = np.zeros(4)
        one_hot[int(match)] = 1.0
        if match.is_reusable:
            reuse_latency = self._cached_latency(ctx, match)
            saving = cold_latency - reuse_latency
        else:
            reuse_latency = 0.0
            saving = 0.0
        runtime_payload = container.image.packages.level_size_mb(
            PackageLevel.RUNTIME
        )
        return np.concatenate(
            [
                [1.0],  # slot occupied
                one_hot,
                [
                    reuse_latency * _LATENCY_SCALE,
                    saving * _LATENCY_SCALE,
                    np.log1p(container.idle_duration(ctx.now)),
                    container.memory_mb * _MEMORY_SCALE,
                    # What a repack would throw away: the container's current
                    # runtime payload (the Fig. 2 "keep the good container
                    # for later" signal).
                    runtime_payload * _MEMORY_SCALE,
                    min(redundancy, 4.0) / 4.0,
                    # How hot the container's *current* stack is in the
                    # recent arrival stream: repacking a high-demand
                    # container forfeits likely L3 hits.
                    self._demand_of(container.image.packages),
                ],
            ]
        )
