"""Online fine-tuning of a trained MLCR policy (paper Section VI-C/D).

The paper: "In addition to offline training, the DRL model also supports
online fine-tuning to adjust model parameters accordingly... This adaptation
process is typically lightweight."

:class:`OnlineFineTuner` wraps a trained :class:`MLCRScheduler` as a
*scheduler that keeps learning*: every decision it serves is also recorded
as a transition, and a small number of gradient steps run after each
decision.  Exploration stays at a low constant epsilon so production traffic
is barely perturbed.  Used to adapt a policy trained on one workload family
to a drifted one without retraining from scratch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mlcr import MLCRScheduler
from repro.core.state import EncodedState
from repro.drl.replay import Transition
from repro.schedulers.base import Decision, Scheduler, SchedulingContext


class OnlineFineTuner(Scheduler):
    """Serve decisions from a trained policy while fine-tuning it in place.

    Parameters
    ----------
    scheduler:
        The trained MLCR scheduler to adapt (modified in place: both serve
        and learn share its agent).
    epsilon:
        Small residual exploration during serving.
    updates_per_decision:
        Gradient steps taken after each scheduling decision.
    reward_scale:
        Must match the scale used in offline training.
    """

    name = "MLCR-online"

    def __init__(
        self,
        scheduler: MLCRScheduler,
        epsilon: float = 0.05,
        updates_per_decision: int = 1,
        reward_scale: float = 0.1,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if updates_per_decision < 0:
            raise ValueError("updates_per_decision must be >= 0")
        self.scheduler = scheduler
        self.epsilon = epsilon
        self.updates_per_decision = updates_per_decision
        self.reward_scale = reward_scale
        self.decisions = 0
        self.updates = 0
        self._pending: Optional[tuple] = None  # (EncodedState, action)

    @staticmethod
    def make_eviction_policy():
        return MLCRScheduler.make_eviction_policy()

    def reset(self) -> None:
        """Clear per-run state."""
        self.scheduler.reset()
        self._pending = None

    # -- scheduling + learning --------------------------------------------------
    def decide(self, ctx: SchedulingContext) -> Decision:
        """Choose a warm container (or cold start) for ``ctx.invocation``."""
        agent = self.scheduler.agent
        encoded = self.scheduler.encoder.encode(ctx)
        mask = (
            encoded.mask
            if self.scheduler.use_mask
            else np.ones_like(encoded.mask)
        )
        action = agent.act(encoded.state, mask, epsilon=self.epsilon)
        decision = encoded.decision_for(action)

        # Close the previous transition now that we see the next state.  The
        # reward is the (scaled, negated) startup latency the previous
        # decision produced, estimated from the decision's match level.
        if self._pending is not None:
            prev_encoded, prev_action, prev_reward = self._pending
            agent.remember(
                Transition(
                    state=prev_encoded.state,
                    action=prev_action,
                    reward=prev_reward,
                    next_state=encoded.state,
                    next_mask=mask,
                    done=False,
                )
            )
            for _ in range(self.updates_per_decision):
                if agent.train_step() is not None:
                    self.updates += 1

        reward = -self._decision_latency(ctx, encoded, action) * (
            self.reward_scale
        )
        self._pending = (encoded, action, reward)
        self.decisions += 1
        return decision

    @staticmethod
    def _decision_latency(
        ctx: SchedulingContext, encoded: EncodedState, action: int
    ) -> float:
        """Startup latency the chosen action will incur (cost-model exact)."""
        decision = encoded.decision_for(action)
        if decision.is_cold:
            return ctx.estimated_latency(None)
        for container in ctx.idle_containers:
            if container.container_id == decision.container_id:
                return ctx.estimated_latency(container)
        return ctx.estimated_latency(None)  # pragma: no cover - defensive
