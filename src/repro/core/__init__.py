"""MLCR core: the paper's primary contribution.

Multi-Level Container Reuse = Table-I matching (in :mod:`repro.containers`)
plus the DRL-based container scheduler implemented here:

* :mod:`repro.core.config` -- all MLCR hyperparameters in one dataclass;
* :mod:`repro.core.state` -- the state encoder (function, container and
  cluster features) and action-mask builder;
* :mod:`repro.core.env` -- a gym-style environment over the cluster
  simulator (one step per scheduling decision, reward = -startup latency);
* :mod:`repro.core.trainer` -- Algorithm 1 (offline DQN training with
  replay, target network, masking, optional greedy demonstration seeding);
* :mod:`repro.core.mlcr` -- :class:`MLCRScheduler`, a trained policy behind
  the standard :class:`~repro.schedulers.base.Scheduler` interface.
"""

from repro.core.config import MLCRConfig
from repro.core.state import EncodedState, StateEncoder
from repro.core.env import SchedulingEnv, StepResult
from repro.core.trainer import MLCRTrainer, TrainingHistory
from repro.core.mlcr import MLCRScheduler, train_mlcr_scheduler

__all__ = [
    "MLCRConfig",
    "StateEncoder",
    "EncodedState",
    "SchedulingEnv",
    "StepResult",
    "MLCRTrainer",
    "TrainingHistory",
    "MLCRScheduler",
    "train_mlcr_scheduler",
]
