"""Algorithm 1: offline training of the MLCR DQN.

Each training iteration replays the workload; every decision stores a
transition ``(s_t, a_t, r_t, s_{t+1})`` in the replay pool and takes
mini-batch gradient steps.  Two practical additions over the bare algorithm:

* **Demonstration seeding** -- before DQN episodes, a few episodes are rolled
  out with heuristic policies and stored in the replay buffer: Greedy-Match
  (deepest match) alternating with exact-match-only (LRU-style).  The two
  heuristics dominate in different pool regimes (greedy under Tight, exact
  under Loose), so showing both gives the bootstrapped targets sensible
  value estimates for either mode from step one.  Ablated in the benchmarks.
* **Masked exploration** -- random exploration only samples valid actions,
  exactly the paper's Section IV-C masking argument.
* **Validation checkpoint selection** -- every ``eval_every`` episodes the
  current policy is rolled out greedily (epsilon = 0) on held-out validation
  workloads and the best-performing network snapshot is kept; training
  returns that snapshot.  Standard practice for value-based RL, where the
  latest network is not necessarily the best one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.containers.matching import MatchLevel
from repro.core.config import MLCRConfig
from repro.core.env import SchedulingEnv
from repro.core.state import EncodedState, StateEncoder
from repro.drl.dqn import DQNAgent
from repro.drl.network import (
    AttentionQNetwork,
    DuelingAttentionQNetwork,
    MLPQNetwork,
    QNetwork,
)
from repro.drl.replay import Transition
from repro.drl.schedules import LinearDecayEpsilon



#: Episode indices at or above this base are validation episodes; workload
#: factories must map them to seeds disjoint from the training seeds.
EVAL_EPISODE_BASE = 100_000


@dataclass
class TrainingHistory:
    """Per-episode training diagnostics."""

    episode_returns: List[float] = field(default_factory=list)
    episode_latencies: List[float] = field(default_factory=list)
    episode_cold_starts: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    eval_latencies: List[float] = field(default_factory=list)
    best_eval_latency: float = float("inf")

    @property
    def best_latency(self) -> float:
        return min(self.episode_latencies) if self.episode_latencies else float("nan")


@dataclass
class _Lane:
    """One episode's live state inside a synchronized batched rollout."""

    env: SchedulingEnv
    kind: str                       # "eval" | "greedy" | "exact"
    encoded: Optional[EncodedState]
    total_reward: float = 0.0
    total_latency: float = 0.0
    cold_starts: int = 0
    next_action: int = -1
    # n-step accumulator: [state, action, [r_t, r_t+1, ...]] per entry.
    window: Deque[list] = field(default_factory=deque)


class MLCRTrainer:
    """Train a masked DQN scheduler on a workload distribution."""

    def __init__(
        self,
        env: SchedulingEnv,
        config: MLCRConfig,
        encoder: Optional[StateEncoder] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.encoder = encoder or env.encoder
        self.rng = np.random.default_rng(config.seed)
        self.agent = DQNAgent(
            network_factory=self._network_factory(),
            config=config.dqn,
            rng=np.random.default_rng(config.seed + 1),
        )
        if config.use_prioritized_replay:
            from repro.drl.prioritized import PrioritizedReplayBuffer

            self.agent.buffer = PrioritizedReplayBuffer(
                config.dqn.buffer_capacity,
                self.agent.online.state_dim,
                self.agent.online.action_dim,
                dtype=config.np_dtype,
            )
        self.history = TrainingHistory()
        self._epsilon = LinearDecayEpsilon(
            start=config.epsilon_start,
            end=config.epsilon_end,
            decay_steps=config.epsilon_decay_steps,
        )
        self._global_step = 0

    # -- network construction ---------------------------------------------------
    def _network_factory(self) -> Callable[[], QNetwork]:
        cfg = self.config
        enc = self.encoder
        seed = cfg.seed + 2

        def factory() -> QNetwork:
            rng = np.random.default_rng(seed)
            if cfg.use_attention:
                cls = (
                    DuelingAttentionQNetwork
                    if cfg.use_dueling
                    else AttentionQNetwork
                )
                return cls(
                    global_dim=enc.global_dim,
                    slot_dim=enc.slot_dim,
                    n_slots=enc.n_slots,
                    rng=rng,
                    model_dim=cfg.model_dim,
                    n_heads=cfg.n_heads,
                    n_blocks=cfg.n_blocks,
                    head_hidden=cfg.head_hidden,
                    dtype=cfg.np_dtype,
                )
            return MLPQNetwork(
                global_dim=enc.global_dim,
                slot_dim=enc.slot_dim,
                n_slots=enc.n_slots,
                rng=rng,
                hidden=cfg.model_dim * 2,
                dtype=cfg.np_dtype,
            )

        return factory

    # -- training loop ------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run demonstration seeding then the DQN episodes of Algorithm 1."""
        if self.config.demo_episodes:
            kinds = [
                "greedy" if demo % 2 == 0 else "exact"
                for demo in range(self.config.demo_episodes)
            ]
            self.rollout(kinds, range(self.config.demo_episodes))
        best_snapshot = None
        for episode in range(self.config.n_episodes):
            ret, latency, colds = self._run_episode(
                policy="dqn", learn=True, episode=episode
            )
            self.history.episode_returns.append(ret)
            self.history.episode_latencies.append(latency)
            self.history.episode_cold_starts.append(colds)
            if verbose:  # pragma: no cover - console output
                print(
                    f"episode {episode:3d}: return={ret:9.2f} "
                    f"latency={latency:9.2f}s cold={colds:4d} "
                    f"eps={self._epsilon.value(self._global_step):.3f}"
                )
            last = episode == self.config.n_episodes - 1
            if self.config.eval_every and (
                last or (episode + 1) % self.config.eval_every == 0
            ):
                eval_latency = self._validate()
                self.history.eval_latencies.append(eval_latency)
                if eval_latency < self.history.best_eval_latency:
                    self.history.best_eval_latency = eval_latency
                    best_snapshot = self.agent.online.state_dict()
        if best_snapshot is not None:
            self.agent.online.load_state_dict(best_snapshot)
            self.agent.sync_target()
        return self.history

    def _validate(self) -> float:
        """Greedy-policy rollouts on held-out validation workloads.

        The validation episodes run as one synchronized batch: each step is
        a single ``(E, state_dim)`` forward instead of ``E`` batch-1
        forwards (see :meth:`_run_episodes_batched`).
        """
        n = max(1, self.config.eval_episodes)
        results = self.rollout(
            ["eval"] * n, [EVAL_EPISODE_BASE + i for i in range(n)]
        )
        return float(np.mean([latency for _, latency, _ in results]))

    # -- batched rollouts ---------------------------------------------------
    def rollout(
        self, kinds: Sequence[str], episodes: Sequence[int]
    ) -> List[Tuple[float, float, int]]:
        """Run no-learning episodes (``"eval"``/``"greedy"``/``"exact"``).

        Dispatches on ``config.batched_rollouts``: the lockstep batched
        path (default) or one sequential :meth:`_run_episode` per entry.
        Both return ``(return, latency, cold_starts)`` per episode in
        input order and are outcome-identical -- the differential oracle
        harness holds them to that.
        """
        kinds = list(kinds)
        episodes = list(episodes)
        if self.config.batched_rollouts:
            return self._run_episodes_batched(kinds, episodes)
        return [
            self._run_episode(policy=kind, learn=False, episode=episode)
            for kind, episode in zip(kinds, episodes)
        ]

    def _run_episodes_batched(
        self, kinds: Sequence[str], episodes: Sequence[int]
    ) -> List[Tuple[float, float, int]]:
        """Run several no-learning episodes in lockstep.

        Each episode gets its own environment/encoder (via
        :meth:`~repro.core.env.SchedulingEnv.spawn`) so arrival tracking
        stays per-episode.  All ``"eval"`` lanes that are still alive share
        one batched greedy forward per step; demonstration lanes
        (``"greedy"`` / ``"exact"``) act heuristically and store their
        transitions exactly as the sequential path does.  Returns
        ``(return, latency, cold_starts)`` per episode, in input order.
        """
        gamma = self.config.dqn.gamma
        n_step = self.config.n_step
        lanes = []
        for kind, episode in zip(kinds, episodes):
            env = self.env.spawn()
            lanes.append(_Lane(env=env, kind=kind, encoded=env.reset(episode)))
        active = [lane for lane in lanes if lane.encoded is not None]
        for lane in lanes:
            if lane.encoded is None:
                lane.env.finish()
        while active:
            eval_lanes = [lane for lane in active if lane.kind == "eval"]
            if eval_lanes:
                states = np.stack([lane.encoded.state for lane in eval_lanes])
                masks = np.stack(
                    [self._training_mask(lane.encoded) for lane in eval_lanes]
                )
                for lane, action in zip(
                    eval_lanes, self.agent.act_batch(states, masks)
                ):
                    lane.next_action = int(action)
            still_active = []
            for lane in active:
                is_eval = lane.kind == "eval"
                action = (
                    lane.next_action if is_eval
                    else self._demo_action(lane.encoded, lane.kind)
                )
                result = lane.env.step(action, lane.encoded)
                lane.total_reward += result.reward
                lane.total_latency += result.startup_latency_s
                lane.cold_starts += int(result.cold_start)
                if not is_eval:
                    for entry in lane.window:
                        entry[2].append(result.reward)
                    lane.window.append([lane.encoded, action, [result.reward]])
                    if (
                        result.state is not None
                        and len(lane.window[0][2]) >= n_step
                    ):
                        self._emit(lane.window.popleft(), result.state, gamma,
                                   done=False)
                    self._global_step += 1
                lane.encoded = result.state
                if lane.encoded is None:
                    if not is_eval:
                        for entry in lane.window:
                            self._emit(entry, None, gamma, done=True)
                    lane.env.finish()
                else:
                    still_active.append(lane)
            active = still_active
        return [
            (lane.total_reward, lane.total_latency, lane.cold_starts)
            for lane in lanes
        ]

    # -- episode rollout -------------------------------------------------------
    def _run_episode(self, policy: str, learn: bool, episode: int):
        encoded = self.env.reset(episode)
        is_eval = policy == "eval"
        demo_kind = policy if policy in ("greedy", "exact") else None
        total_reward = 0.0
        total_latency = 0.0
        cold_starts = 0
        gamma = self.config.dqn.gamma
        n_step = self.config.n_step
        # n-step accumulator: [state, action, [r_t, r_t+1, ...]].  A deque:
        # the ready transition pops from the left in O(1) instead of the
        # O(n) list ``pop(0)``.
        window: Deque[list] = deque()

        while encoded is not None:
            action = self._choose_action(encoded, demo_kind, is_eval)
            result = self.env.step(action, encoded)
            total_reward += result.reward
            total_latency += result.startup_latency_s
            cold_starts += int(result.cold_start)

            if is_eval:
                encoded = result.state
                continue
            for entry in window:
                entry[2].append(result.reward)
            window.append([encoded, action, [result.reward]])
            if result.state is not None and len(window[0][2]) >= n_step:
                self._emit(window.popleft(), result.state, gamma, done=False)

            if learn and self._global_step % self.config.train_every == 0:
                loss = self.agent.train_step()
                if loss is not None:
                    self.history.losses.append(loss)
            self._global_step += 1
            encoded = result.state

        if not is_eval:
            # Episode over: flush the window with terminal transitions.
            for entry in window:
                self._emit(entry, None, gamma, done=True)
        self.env.finish()
        return total_reward, total_latency, cold_starts

    def _emit(
        self,
        entry: list,
        next_encoded: Optional[EncodedState],
        gamma: float,
        done: bool,
    ) -> None:
        """Store one (possibly n-step) transition in the replay buffer."""
        state, action, rewards = entry
        returns = sum(r * gamma**i for i, r in enumerate(rewards))
        if done or next_encoded is None:
            next_state = np.zeros_like(state.state)
            next_mask = np.zeros(self.agent.action_dim, dtype=bool)
            next_mask[-1] = True
            done = True
        else:
            next_state = next_encoded.state
            next_mask = self._training_mask(next_encoded)
        self.agent.remember(
            Transition(
                state=state.state,
                action=action,
                reward=returns,
                next_state=next_state,
                next_mask=next_mask,
                done=done,
                n_steps=len(rewards),
            )
        )

    def _training_mask(self, encoded: EncodedState) -> np.ndarray:
        """Mask used inside TD targets (all-valid when masking is ablated)."""
        if self.config.use_mask:
            return encoded.mask
        return np.ones_like(encoded.mask)

    def _choose_action(
        self, encoded: EncodedState, demo_kind: Optional[str],
        is_eval: bool = False,
    ) -> int:
        if demo_kind is not None:
            return self._demo_action(encoded, demo_kind)
        epsilon = 0.0 if is_eval else self._epsilon.value(self._global_step)
        return self.agent.act(
            encoded.state, self._training_mask(encoded), epsilon
        )

    @staticmethod
    def _demo_action(encoded: EncodedState, kind: str) -> int:
        """Heuristic demonstration actions in slot space.

        ``greedy``: deepest match (slot 0 holds it after ranking);
        ``exact``: only a full (L3) match, otherwise cold start.
        """


        cold = len(encoded.slot_containers)
        if kind == "exact":
            for slot, match in enumerate(encoded.slot_matches):
                if match is MatchLevel.L3 and encoded.mask[slot]:
                    return slot
            return cold
        if encoded.mask[:-1].any():
            return int(np.flatnonzero(encoded.mask[:-1])[0])
        return cold
