"""MLCR: Multi-Level Container Reuse for serverless cold-start mitigation.

A from-scratch Python reproduction of "Tackling Cold Start in Serverless
Computing with Multi-Level Container Reuse" (IPDPS 2024): the three-level
container matcher, the DRL-based scheduler, the FStartBench benchmark and
the discrete-event serverless platform simulator it is evaluated on.

Quickstart::

    from repro import (
        overall_workload, ClusterSimulator, SimulationConfig,
        GreedyMatchScheduler,
    )

    workload = overall_workload(seed=0)
    scheduler = GreedyMatchScheduler()
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=4096),
        scheduler.make_eviction_policy(),
    )
    result = sim.run(workload, scheduler)
    print(result.summary())

See ``examples/`` for training the DRL scheduler and regenerating the
paper's figures.
"""

from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.containers.costmodel import CostModelParams, StartupCostModel
from repro.containers.image import FunctionImage
from repro.containers.matching import MatchLevel, match_level
from repro.core.config import MLCRConfig
from repro.core.mlcr import MLCRScheduler, train_mlcr_scheduler
from repro.schedulers import (
    ColdOnlyScheduler,
    Decision,
    FaasCacheScheduler,
    GreedyMatchScheduler,
    KeepAliveScheduler,
    LookaheadScheduler,
    LRUScheduler,
    Scheduler,
)
from repro.workloads import (
    Workload,
    build_workload,
    fstartbench_functions,
    overall_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "StartupCostModel",
    "CostModelParams",
    "FunctionImage",
    "MatchLevel",
    "match_level",
    "MLCRConfig",
    "MLCRScheduler",
    "train_mlcr_scheduler",
    "Scheduler",
    "Decision",
    "ColdOnlyScheduler",
    "KeepAliveScheduler",
    "LRUScheduler",
    "FaasCacheScheduler",
    "GreedyMatchScheduler",
    "LookaheadScheduler",
    "Workload",
    "build_workload",
    "overall_workload",
    "fstartbench_functions",
    "__version__",
]
