"""Benchmark harness for Figure 11c: Uniform / Peak / Random arrivals."""

from repro.experiments import fig11_benchmarks
from repro.experiments.fig8_overall import METHOD_ORDER



def test_fig11c_arrivals(benchmark, scale, emit):
    result = benchmark.pedantic(
        fig11_benchmarks.run_subfigure,
        args=("c:arrival",),
        kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    emit(fig11_benchmarks.report(result))

    # Paper shape: the bursty Peak pattern is the hardest arrival pattern.
    # In our cost model this holds in aggregate (and sharply for FaasCache,
    # whose greedy-dual cache thrashes during bursts), though KeepAlive's
    # reject-when-full policy can profit slightly from bursts; see
    # EXPERIMENTS.md.
    peak_mean = sum(result.mean_of("Peak", m) for m in METHOD_ORDER)
    uniform_mean = sum(result.mean_of("Uniform", m) for m in METHOD_ORDER)
    assert peak_mean >= uniform_mean
    assert result.mean_of("Peak", "FaasCache") > result.mean_of(
        "Uniform", "FaasCache"
    )
    # MLCR is competitive with the best method under Peak.
    peak_means = {m: result.mean_of("Peak", m) for m in METHOD_ORDER}
    assert peak_means["MLCR"] <= 1.10 * min(peak_means.values())
