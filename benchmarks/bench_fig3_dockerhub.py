"""Benchmark harness for Figure 3: Docker Hub popularity concentration."""

from repro.experiments import fig3_dockerhub



def test_fig3_dockerhub(benchmark, emit):
    result = benchmark.pedantic(fig3_dockerhub.run, rounds=3, iterations=1)
    emit(fig3_dockerhub.report(result))
    # Paper headline: top-4 base images hold ~77 % of base-image pulls.
    assert 0.70 <= result.top4_base_share <= 0.84
