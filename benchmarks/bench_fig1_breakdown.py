"""Benchmark harness for Figure 1: C-style vs W-style reuse breakdowns."""

from repro.experiments import fig1_breakdown



def test_fig1_breakdown(benchmark, emit):
    result = benchmark.pedantic(fig1_breakdown.run, rounds=3, iterations=1)
    emit(fig1_breakdown.report(result))
    # Paper shape: W accelerates startup (up to 14x in the paper's setup).
    assert result.max_speedup > 3.0
    for label in result.cold:
        assert result.warm[label].total_s < result.cold[label].total_s
