"""Micro-benchmarks for the DRL engine fast path (not a paper figure).

Measures the three hot paths the float32/fused-QKV/inference-mode work
targets: greedy action latency, DQN train-step throughput, and the batched
vs sequential greedy evaluation rollout.  Each benchmark carries an
absolute-threshold backstop; the conftest regression guard compares against
``bench_baseline.json``.
"""

import time

import numpy as np

from repro.cluster.simulator import SimulationConfig
from repro.core.config import MLCRConfig
from repro.core.env import SchedulingEnv
from repro.core.state import StateEncoder
from repro.core.trainer import EVAL_EPISODE_BASE, MLCRTrainer
from repro.drl.dqn import DQNAgent, DQNConfig
from repro.drl.network import AttentionQNetwork
from repro.drl.replay import Transition
from repro.workloads.fstartbench import overall_workload


def make_agent(dtype=np.float32, batch_size=32):
    """A training-shaped agent with a full replay buffer."""
    rng = np.random.default_rng(0)

    def factory():
        return AttentionQNetwork(
            global_dim=40, slot_dim=12, n_slots=12,
            rng=np.random.default_rng(1),
            model_dim=64, head_hidden=64, dtype=dtype,
        )

    agent = DQNAgent(
        network_factory=factory,
        config=DQNConfig(batch_size=batch_size, buffer_capacity=1024,
                         target_sync_every=1_000_000),
        rng=rng,
    )
    n_actions = agent.action_dim
    for _ in range(256):
        mask = np.ones(n_actions, dtype=bool)
        agent.remember(Transition(
            state=rng.normal(size=agent.online.state_dim),
            action=int(rng.integers(n_actions)),
            reward=float(rng.normal()),
            next_state=rng.normal(size=agent.online.state_dim),
            next_mask=mask,
            done=bool(rng.random() < 0.05),
            n_steps=1,
        ))
    return agent


def make_trainer(n_eval=12, dtype="float32"):
    """Trainer over a FStartBench workload slice (untrained policy).

    ``model_dim=128`` sits between the CPU default (64) and the paper's 512
    so the benchmark exercises a regime where the network forward -- the
    thing the fast path accelerates -- carries a realistic share of the
    per-decision cost.
    """
    cfg = MLCRConfig(
        n_slots=12, model_dim=128, head_hidden=64, dtype=dtype,
        n_episodes=1, demo_episodes=0, eval_every=0, eval_episodes=n_eval,
        dqn=DQNConfig(batch_size=32, buffer_capacity=1024),
    )
    encoder = StateEncoder(n_slots=cfg.n_slots)
    env = SchedulingEnv(
        workload_factory=lambda ep: overall_workload(seed=ep % 17, n=150),
        sim_config=SimulationConfig(pool_capacity_mb=2048.0),
        encoder=encoder,
    )
    return MLCRTrainer(env, cfg)


def test_act_latency(benchmark):
    """One greedy masked ``act()`` -- the serving-path decision latency."""
    agent = make_agent()
    rng = np.random.default_rng(2)
    state = rng.normal(size=agent.online.state_dim)
    mask = np.ones(agent.action_dim, dtype=bool)

    benchmark(lambda: agent.act(state, mask, epsilon=0.0))
    # Inference-mode float32 forward on a batch of one: sub-millisecond.
    assert benchmark.stats["mean"] < 0.005


def test_train_step_throughput(benchmark, emit):
    """One DQN train step (float32), with the float64 ratio reported."""
    agent = make_agent(dtype=np.float32)
    benchmark(agent.train_step)

    # One-shot float64 reference for the speedup report (not benchmarked:
    # the ratio is informational, the float32 mean is the guarded number).
    agent64 = make_agent(dtype=np.float64)
    agent64.train_step()
    reps, f64_mean = 10, float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(reps):
            agent64.train_step()
        f64_mean = min(f64_mean, (time.perf_counter() - start) / reps)
    speedup = f64_mean / benchmark.stats["mean"]
    emit(
        "DQN train_step: "
        f"float32 {benchmark.stats['mean'] * 1e3:.2f} ms vs "
        f"float64 {f64_mean * 1e3:.2f} ms ({speedup:.1f}x)"
    )
    assert benchmark.stats["mean"] < 0.05
    # Conservative floor (typical ratio 1.6-1.9x; the box is shared).
    assert speedup > 1.2


def test_eval_rollout_batched_vs_sequential(benchmark, emit):
    """Fast-path eval rollouts vs the pre-fast-path reference engine.

    Fast path: float32 network, lockstep batched greedy lanes (one
    ``(E, state_dim)`` inference forward per step).  Reference: float64
    network, one episode at a time, one batch-1 forward per decision --
    the engine before this round of optimization.  Outcome parity between
    batched and sequential rollouts is pinned separately in
    ``tests/test_drl_fastpath.py``.
    """
    n_eval = 12
    episodes = [EVAL_EPISODE_BASE + i for i in range(n_eval)]
    batched_trainer = make_trainer(n_eval, dtype="float32")

    results = benchmark(
        lambda: batched_trainer._run_episodes_batched(
            ["eval"] * n_eval, episodes
        )
    )
    assert len(results) == n_eval

    # One-shot reference timing (not benchmarked: the ratio is the story,
    # the batched mean is the guarded number).
    sequential_trainer = make_trainer(n_eval, dtype="float64")
    start = time.perf_counter()
    sequential = [
        sequential_trainer._run_episode("eval", learn=False, episode=ep)
        for ep in episodes
    ]
    seq_time = time.perf_counter() - start
    assert len(sequential) == n_eval
    speedup = seq_time / benchmark.stats["mean"]

    # Acting-path-only comparison -- the component this PR accelerates:
    # float64 one-state-at-a-time ``act()`` (reference engine) vs float32
    # ``act_batch()`` (fast path).  The end-to-end ratio above is bounded
    # by the simulator + encoder, which both paths pay identically.
    fast = batched_trainer.agent
    ref = sequential_trainer.agent
    rng = np.random.default_rng(3)
    states = rng.normal(size=(n_eval, fast.online.state_dim))
    masks = np.ones((n_eval, fast.action_dim), dtype=bool)
    reps = 30
    start = time.perf_counter()
    for _ in range(reps):
        for i in range(n_eval):
            ref.act(states[i], masks[i], epsilon=0.0)
    act_seq = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        fast.act_batch(states, masks)
    act_batched = (time.perf_counter() - start) / reps
    act_speedup = act_seq / act_batched

    emit(
        f"Greedy eval rollout ({n_eval} episodes): "
        f"batched float32 {benchmark.stats['mean']:.3f} s vs "
        f"sequential float64 {seq_time:.3f} s ({speedup:.1f}x end-to-end); "
        f"acting path {act_speedup:.1f}x "
        f"({act_seq * 1e3:.2f} ms -> {act_batched * 1e3:.2f} ms per sweep)"
    )
    assert speedup > 1.5
    assert act_speedup > 3.0
