"""Micro-benchmark for distilled-policy decisions (not a paper figure).

The distilled tree surrogate exists to cut per-decision latency from the
network's hundreds of microseconds (paper Section VI-D: "3-4 ms" on
their hardware) to a microsecond-scale tree walk.  This times both paths
on the same encoded state and pins the >= 10x speedup the distillation
is for.  Fidelity (>= 99% action agreement on real decision traces) is
the ``surrogate_vs_network`` oracle's job; here an untrained network is
used so the default capture set stays free of DRL training.
"""

import time

import numpy as np

from repro.core.config import MLCRConfig
from repro.core.state import StateEncoder
from repro.drl.distill import DistillConfig, fit_tree
from repro.drl.dqn import DQNAgent
from repro.drl.network import AttentionQNetwork


def _make_agent():
    """Paper-architecture agent with fresh weights (forward cost only)."""
    cfg = MLCRConfig()
    encoder = StateEncoder(n_slots=cfg.n_slots)

    def factory():
        return AttentionQNetwork(
            global_dim=encoder.global_dim,
            slot_dim=encoder.slot_dim,
            n_slots=encoder.n_slots,
            rng=np.random.default_rng(2),
            model_dim=cfg.model_dim,
            n_heads=cfg.n_heads,
            n_blocks=cfg.n_blocks,
            head_hidden=cfg.head_hidden,
            dtype=cfg.np_dtype,
        )

    return DQNAgent(
        network_factory=factory, config=cfg.dqn,
        rng=np.random.default_rng(0),
    )


def _distilled(agent, n_states=256):
    rng = np.random.default_rng(0)
    states = rng.normal(size=(n_states, agent.online.state_dim))
    mask = np.ones(agent.action_dim, dtype=bool)
    actions = np.array([agent.act(s, mask, 0.0) for s in states])
    tree = fit_tree(states, actions, agent.action_dim,
                    DistillConfig(max_depth=12))
    return tree, states[0], mask


def test_network_decision_latency(benchmark):
    """One masked greedy forward pass of the full attention network."""
    agent = _make_agent()
    state = np.zeros(agent.online.state_dim)
    mask = np.ones(agent.action_dim, dtype=bool)
    benchmark(agent.act, state, mask, 0.0)
    assert benchmark.stats["mean"] < 0.05


def test_surrogate_decision_latency(benchmark, emit):
    """Masked tree-walk decision; must be >= 10x the network forward."""
    agent = _make_agent()
    tree, state, mask = _distilled(agent)

    network_s = float("inf")
    for _ in range(200):
        t0 = time.perf_counter()
        agent.act(state, mask, 0.0)
        network_s = min(network_s, time.perf_counter() - t0)

    benchmark(tree.act, state, mask)
    # Microsecond-scale timing: load jitter exceeds the 30% guard band,
    # so the relative assert below is the gate instead of the baseline.
    benchmark.extra_info["no_guard"] = True

    surrogate_s = benchmark.stats["min"]
    speedup = network_s / surrogate_s
    emit(
        f"distilled decision: network {network_s * 1e6:.1f} us vs "
        f"surrogate {surrogate_s * 1e6:.2f} us ({speedup:.1f}x, "
        f"{tree.n_nodes} nodes)"
    )
    assert speedup >= 10.0
