"""Benchmark harness for Figure 11a: HI-Sim vs LO-Sim box charts."""

from repro.experiments import fig11_benchmarks
from repro.experiments.fig8_overall import METHOD_ORDER



def test_fig11a_similarity(benchmark, scale, emit):
    result = benchmark.pedantic(
        fig11_benchmarks.run_subfigure,
        args=("a:similarity",),
        kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    emit(fig11_benchmarks.report(result))

    # Paper shape: every method does better on HI-Sim than on LO-Sim.
    for method in METHOD_ORDER:
        assert result.mean_of("HI-Sim", method) < result.mean_of(
            "LO-Sim", method
        ), method
    # MLCR is competitive with the best method on the hard (LO-Sim) side.
    lo_means = {m: result.mean_of("LO-Sim", m) for m in METHOD_ORDER}
    assert lo_means["MLCR"] <= 1.10 * min(lo_means.values())
