"""Benchmark harness for Table II: the FStartBench function inventory."""

from repro.experiments import tab2_functions



def test_tab2_functions(benchmark, emit):
    result = benchmark.pedantic(tab2_functions.run, rounds=3, iterations=1)
    emit(tab2_functions.report(result))
    assert len(result.rows) == 13
    # Paper band: cold start is 1.3x-166x the execution time.
    assert result.min_ratio >= 1.2
    assert result.max_ratio <= 170
