"""Extension benchmark: global vs per-worker warm-pool sharding."""

from repro.experiments import sharding



def test_pool_sharding(benchmark, scale, emit):
    result = benchmark.pedantic(
        sharding.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(sharding.report(result))

    # Fragmentation can only hurt: heavily sharded pools are never
    # meaningfully better than the single global pool.
    for method in ("LRU", "Greedy-Match"):
        global_pool = result.row(method, 1).total_startup_s
        sharded = result.row(method, 8).total_startup_s
        assert sharded >= 0.95 * global_pool, method
