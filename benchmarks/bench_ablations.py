"""Benchmark harness for the MLCR design-choice ablations (DESIGN.md #5)."""

from repro.experiments import ablations



def test_ablations(benchmark, scale, emit):
    result = benchmark.pedantic(
        ablations.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(ablations.report(result))

    full = result.row("full").mean_total_startup_s
    # The full configuration should not be dominated by its ablations --
    # allow slack because small-budget DQN runs are noisy.
    for variant in ("no-mask", "mlp", "no-demos"):
        assert full <= 1.15 * result.row(variant).mean_total_startup_s, variant
    # All variants must at least stay in the sane band around Greedy.
    for row in result.rows:
        assert row.mean_total_startup_s < 1.5 * result.greedy_total_s
