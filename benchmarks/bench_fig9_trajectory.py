"""Benchmark harness for Figure 9: cumulative trajectories, Greedy vs MLCR."""

from repro.experiments import fig9_trajectory



def test_fig9_trajectory(benchmark, scale, emit):
    result = benchmark.pedantic(
        fig9_trajectory.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(fig9_trajectory.report(result))

    # Series are well-formed cumulative curves over the full workload.
    assert len(result.greedy_cum_latency) == len(result.mlcr_cum_latency)
    assert (result.greedy_cum_latency[1:] >=
            result.greedy_cum_latency[:-1]).all()
    assert (result.mlcr_cum_latency[1:] >= result.mlcr_cum_latency[:-1]).all()
    # Paper shape: MLCR's final cumulative latency is not worse than
    # Greedy-Match's under the Loose pool.
    assert result.final_gap_s > -0.15 * result.greedy_cum_latency[-1]
