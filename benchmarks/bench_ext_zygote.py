"""Extension benchmark: zygote containers (Li et al.) vs multi-level reuse.

Not a paper figure -- quantifies the Section VII related-work comparison:
zygote containers help when a family's union image fits in the pool and the
workload stays inside the provisioned families; multi-level matching needs
no provisioning and recovers partial overlap.  Run under delta pricing so
the zygote gets its intended cost semantics.
"""

from repro.analysis.report import ascii_table
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.experiments.common import pool_sizes
from repro.schedulers import (
    GreedyMatchScheduler,
    LRUScheduler,
    ZygoteScheduler,
    build_zygote_images,
)
from repro.workloads.fstartbench import overall_workload



def _run(scheduler, workload, capacity, prewarm_zygotes):
    sim = ClusterSimulator(
        SimulationConfig(pool_capacity_mb=capacity, delta_pricing=True),
        scheduler.make_eviction_policy(),
    )
    if prewarm_zygotes:
        for image in build_zygote_images(workload.function_specs()):
            if image.memory_mb <= sim.pool.free_mb:
                sim.prewarm(image)
    return sim.run(workload, scheduler).telemetry


def test_zygote_vs_multilevel(benchmark, scale, emit):
    workload = overall_workload(seed=0)
    sizes = pool_sizes(workload)

    def run_all():
        rows = {}
        for pool_label in ("Tight", "Loose"):
            capacity = sizes[pool_label]
            for scheduler, prewarm in (
                (LRUScheduler(), False),
                (GreedyMatchScheduler(), False),
                (ZygoteScheduler(), True),
            ):
                t = _run(scheduler, workload, capacity, prewarm)
                rows[(scheduler.name, pool_label)] = (
                    t.total_startup_latency_s, t.cold_starts
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [
        [name, pool, f"{total:.1f}", str(cold)]
        for (name, pool), (total, cold) in sorted(rows.items())
    ]
    emit(ascii_table(
        ["method", "pool", "total startup [s]", "cold starts"],
        table,
        title="Extension: zygote vs multi-level reuse (delta pricing)",
    ))

    # Zygotes beat plain LRU at both pool sizes: the workload stays inside
    # the provisioned families, the regime they were designed for.
    for pool in ("Tight", "Loose"):
        assert rows[("Zygote", pool)][0] < rows[("LRU", pool)][0], pool
    # Multi-level matching is the stronger *unprovisioned* method: it beats
    # LRU at Tight without any zygote images prepared up front.
    assert rows[("Greedy-Match", "Tight")][0] < rows[("LRU", "Tight")][0]