"""Micro-benchmarks for the substrates (not a paper figure).

Performance sanity checks that keep the simulator and the numpy DRL stack
fast enough for the experiment suite: simulator event throughput, Table-I
matching rate, and network forward/backward latency.
"""

import numpy as np

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.containers.matching import match_level
from repro.drl.network import AttentionQNetwork
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.workloads.fstartbench import overall_workload
from repro.workloads.functions import fstartbench_functions


def test_simulator_throughput(benchmark):
    """End-to-end simulation of 400 invocations under Greedy-Match."""
    workload = overall_workload(seed=0)

    def run():
        scheduler = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=2048.0),
            scheduler.make_eviction_policy(),
        )
        return sim.run(workload, scheduler)

    result = benchmark(run)
    assert result.telemetry.n_invocations == 400
    # The experiment suite needs thousands of these: keep one run < 0.5 s
    # (the pool match index and telemetry fast path leave ~15x headroom).
    assert benchmark.stats["mean"] < 0.5


def test_match_level_rate(benchmark):
    """Pairwise Table-I matching over all FStartBench images."""
    images = [s.image for s in fstartbench_functions()]

    def run():
        total = 0
        for a in images:
            for b in images:
                total += int(match_level(a, b))
        return total

    benchmark(run)
    # Interned-fingerprint matching: ~30 us for the full pairwise sweep,
    # 10x tighter than the frozenset-comparison budget it replaced.
    assert benchmark.stats["mean"] < 0.001


def test_qnetwork_forward_backward(benchmark):
    """One training-step-sized forward+backward of the Fig. 7 network."""
    rng = np.random.default_rng(0)
    net = AttentionQNetwork(global_dim=40, slot_dim=12, n_slots=12, rng=rng,
                            model_dim=32, head_hidden=32)
    x = rng.normal(size=(32, net.state_dim))
    grad = rng.normal(size=(32, net.action_dim))

    def step():
        net.zero_grad()
        net.forward(x)
        net.backward(grad)

    benchmark(step)
    assert benchmark.stats["mean"] < 0.1
