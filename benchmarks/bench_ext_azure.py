"""Extension benchmark: production-like Azure traces.

Not a paper figure -- validates the paper's *motivation* quantitatively: on
traces where ~19 % of functions are invoked exactly once and >40 % at most
twice (the Azure statistics the paper cites), exact-match keep-alive rarely
helps, while multi-level matching recovers reuse from similar containers.
"""

from repro.analysis.report import ascii_table
from repro.experiments.common import evaluate_scheduler, pool_sizes
from repro.schedulers import (
    GreedyMatchScheduler,
    KeepAliveScheduler,
    LRUScheduler,
)
from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator



def test_azure_trace_motivation(benchmark, scale, emit):
    generator = AzureTraceGenerator(AzureTraceConfig(
        n_functions=60, n_invocations=600, burstiness=0.5,
    ))

    def run_all():
        rows = {}
        for seed in range(scale.repeats):
            trace = generator.generate(seed=seed)
            capacity = pool_sizes(trace)["Tight"]
            for scheduler in (KeepAliveScheduler(), LRUScheduler(),
                              GreedyMatchScheduler()):
                res = evaluate_scheduler(scheduler, trace, capacity, "Tight")
                rows.setdefault(scheduler.name, []).append(
                    (res.total_startup_s, res.cold_starts)
                )
        return {
            name: (
                sum(r[0] for r in results) / len(results),
                sum(r[1] for r in results) / len(results),
            )
            for name, results in rows.items()
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(ascii_table(
        ["method", "total startup [s]", "cold starts"],
        [[name, f"{total:.1f}", f"{cold:.1f}"]
         for name, (total, cold) in rows.items()],
        title=(f"Extension: Azure-like trace, Tight pool "
               f"(means over {scale.repeats} seeds)"),
    ))

    # The motivating claim: on rare-function workloads, multi-level reuse
    # dominates exact matching by a wide margin.
    greedy_total, greedy_cold = rows["Greedy-Match"]
    for baseline in ("KeepAlive", "LRU"):
        total, cold = rows[baseline]
        assert greedy_total < total, baseline
        assert greedy_cold < 0.6 * cold, baseline
