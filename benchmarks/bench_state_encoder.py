"""Micro-benchmark for the DRL state encoder (not a paper figure).

The encoder runs once per MLCR decision, i.e. hundreds of thousands of
times per training session.  This measures encode throughput against a
100-container warm pool (with the pool match index attached, as the
simulator provides it) across a rotation of FStartBench invocations, so
the per-image caches see the realistic mixed-hit pattern.
"""

from repro.cluster.pool import PoolSet
from repro.containers.container import Container, ContainerState
from repro.containers.costmodel import StartupCostModel
from repro.core.state import StateEncoder
from repro.schedulers.base import SchedulingContext
from repro.workloads.functions import fstartbench_functions
from repro.workloads.workload import Invocation

N_CONTAINERS = 100
N_INVOCATIONS = 20


def _make_contexts():
    specs = fstartbench_functions()
    pool = PoolSet(capacity_mb=float("inf"))
    for i in range(N_CONTAINERS):
        pool.add(
            Container(
                container_id=i,
                image=specs[i % len(specs)].image,
                state=ContainerState.IDLE,
                last_used_at=float(i),
            ),
            shard_index=0,
        )
    idle = tuple(pool.lru_order())
    cost_model = StartupCostModel()
    return [
        SchedulingContext(
            now=float(N_CONTAINERS),
            invocation=Invocation(
                invocation_id=i,
                spec=specs[i % len(specs)],
                arrival_time=float(N_CONTAINERS),
                execution_time_s=0.5,
            ),
            idle_containers=idle,
            cost_model=cost_model,
            pool_capacity_mb=float("inf"),
            pool_used_mb=pool.used_mb,
            pool=pool,
        )
        for i in range(N_INVOCATIONS)
    ]


def test_state_encode_throughput(benchmark):
    """Encode 20 decision points against a 100-container pool."""
    contexts = _make_contexts()
    encoder = StateEncoder(n_slots=12)

    def run():
        for ctx in contexts:
            encoder.encode(ctx)

    benchmark(run)
    # MLCR training encodes at every simulated decision: keep a 20-encode
    # batch comfortably in the low-millisecond range.
    assert benchmark.stats["mean"] < 0.05
