"""Benchmark harness for Figure 8: overall latency & cold starts.

Five methods x {Tight, Moderate, Loose} on the 400-invocation overall mix.
Trains MLCR once per pool size (cached for the session).
"""

from repro.experiments import fig8_overall



def test_fig8_overall(benchmark, scale, emit):
    result = benchmark.pedantic(
        fig8_overall.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(fig8_overall.report(result))

    # Shape 1: everyone improves as the pool grows.
    for method in fig8_overall.METHOD_ORDER:
        tight = result.cell(method, "Tight").total_startup_s
        loose = result.cell(method, "Loose").total_startup_s
        assert loose < tight, method

    # Shape 2: multi-level methods have the fewest cold starts.
    for pool in result.capacities:
        greedy_cold = result.cell("Greedy-Match", pool).cold_starts
        lru_cold = result.cell("LRU", pool).cold_starts
        assert greedy_cold < lru_cold, pool

    # Shape 3: MLCR wins where warm resources are scarce (the paper's
    # headline result is largest under Tight).
    tight_latencies = {
        m: result.cell(m, "Tight").total_startup_s
        for m in fig8_overall.METHOD_ORDER
    }
    assert tight_latencies["MLCR"] == min(tight_latencies.values())
