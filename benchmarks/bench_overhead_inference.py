"""Benchmark harness for Section VI-D: scheduling-decision overhead."""

import numpy as np

from repro.experiments import overhead
from repro.experiments.common import pool_sizes, train_mlcr_for
from repro.workloads.fstartbench import overall_workload



def test_overhead_report(benchmark, scale, emit):
    result = benchmark.pedantic(
        overhead.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(overhead.report(result))
    # Paper: inference is a few milliseconds; CPU numpy stays in the same
    # order of magnitude and far below typical startup savings.
    assert result.mean_decision_ms < 50.0
    assert result.decisions == 400


def test_policy_inference_microbenchmark(benchmark, scale, emit):
    """Raw per-decision latency of the trained policy (paper: 3-4 ms)."""
    workload = overall_workload(seed=0)
    capacity = pool_sizes(workload)["Tight"]
    mlcr = train_mlcr_for(
        "Overall", lambda s: overall_workload(seed=s), capacity, scale
    )
    state = np.zeros(mlcr.agent.online.state_dim)
    mask = np.ones(mlcr.agent.action_dim, dtype=bool)

    benchmark(mlcr.agent.act, state, mask, 0.0)
    # One forward pass of the attention network on CPU should be sub-10ms.
    assert benchmark.stats["mean"] < 0.05
