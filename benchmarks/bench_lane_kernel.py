"""Micro-benchmark for the multi-lane simulator kernel (not a paper figure).

Grid sweeps spend their time running many independent ``(scheduler,
workload, seed, capacity)`` cells; the lane kernel advances a batch of
them in lockstep through one arrival table instead of paying the full
event-loop machinery per cell.  This measures an 8-lane batch against
the sequential per-cell path on the same cells and pins the >= 3x
speedup the kernel exists for -- while asserting the summaries stay
byte-identical (the ``lanes_vs_sequential`` oracle guards the same
property over a wider grid).
"""

import time

from repro.cluster.lanes import LANE_SCHEDULERS, LaneKernel, LaneSpec
from repro.experiments.parallel import (
    GridTask,
    cached_arrival_table,
    cached_workload,
    run_task,
)

#: 8 cells = every lane-supported scheduler x two pool capacities.
CELLS = [
    GridTask(scheduler=s, workload="LO-Sim", seed=0,
             pool_label="Bench", capacity_mb=c)
    for s in sorted(LANE_SCHEDULERS) for c in (800.0, 4000.0)
]


def _kernel_batch():
    specs = [
        LaneSpec(
            scheduler=task.scheduler,
            table=cached_arrival_table(task.workload, task.seed),
            capacity_mb=task.capacity_mb,
        )
        for task in CELLS
    ]
    return LaneKernel(specs).run()


def test_lane_kernel_8_lanes(benchmark, emit):
    """8-lane kernel batch vs the sequential per-cell path (>= 3x)."""
    for task in CELLS:  # warm the per-process workload/table memos
        cached_workload(task.workload, task.seed)
        cached_arrival_table(task.workload, task.seed)

    sequential_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        sequential = [run_task(task) for task in CELLS]
        sequential_s = min(sequential_s, time.perf_counter() - t0)

    results = benchmark(_kernel_batch)

    # Parity backstop: the speed means nothing if the cells drift.
    for cell, result in zip(sequential, results):
        assert list(result.summary.items()) == list(cell.summary.items())

    speedup = sequential_s / benchmark.stats["min"]
    emit(
        f"lane kernel: {len(CELLS)} cells, sequential "
        f"{sequential_s * 1e3:.1f} ms vs 8-lane batch "
        f"{benchmark.stats['min'] * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 3.0
