"""Micro-benchmark for the multi-lane simulator kernel (not a paper figure).

Grid sweeps spend their time running many independent ``(scheduler,
workload, seed, capacity)`` cells; the lane kernel advances a batch of
them in lockstep through one arrival table instead of paying the full
event-loop machinery per cell.  Four entries:

* ``test_lane_kernel_8_lanes`` -- the original 8-cell batch (the four
  PR-4 closed-form schedulers x two capacities), kept byte-compatible
  with its historical baseline entry; pins the >= 3x speedup.
* ``test_lane_kernel_closed_form_registry`` -- every closed-form
  registry scheduler (adds zygote / walways / offline) x two
  capacities; pins >= 3x over the sequential per-cell path.
* ``test_lane_kernel_scripted`` -- the scripted-decision lanes
  (faascache / lookahead / mpc / lending drive their real ``decide()``
  per arrival).  The decision stays Python, so the win is the shared
  kernel machinery only: parity is asserted, the timing is recorded
  ``no_guard`` (no speedup floor, excluded from the baseline guard).
* ``test_stream_lane_replay`` -- the chunked streaming lane path
  (``run_stream_lanes``) vs per-cell sequential ``run_stream`` on the
  stream family's closed-form schedulers; pins the >= 3x speedup the
  acceptance criteria require.

Every entry asserts byte-identical summaries before timing means
anything (the ``lanes_vs_sequential`` / ``streaming_vs_materialized``
oracles guard the same property over wider grids).
"""

import time

from repro.cluster.lanes import (
    LANE_SCHEDULERS,
    LaneKernel,
    LaneSpec,
    lane_mode,
    run_stream_lanes,
)
from repro.experiments.parallel import (
    GridTask,
    cached_arrival_table,
    cached_workload,
    run_task,
)

#: The original 8-cell batch: the four PR-4 closed-form schedulers x two
#: pool capacities -- pinned explicitly (not derived from the registry) so
#: the historical ``bench_baseline.json`` entry keeps measuring the same
#: work as the registry grows.
CELLS = [
    GridTask(scheduler=s, workload="LO-Sim", seed=0,
             pool_label="Bench", capacity_mb=c)
    for s in ("coldonly", "greedy", "keepalive", "lru")
    for c in (800.0, 4000.0)
]

#: Full closed-form registry x two capacities (zygote, walways, offline
#: included) -- derived, so new closed-form codes are measured the moment
#: they land.
CLOSED_FORM_CELLS = [
    GridTask(scheduler=s, workload="LO-Sim", seed=0,
             pool_label="Bench", capacity_mb=c)
    for s in sorted(k for k in LANE_SCHEDULERS
                    if lane_mode(k) == "closed-form")
    for c in (800.0, 4000.0)
]

#: Scripted-decision lanes x two capacities.
SCRIPTED_CELLS = [
    GridTask(scheduler=s, workload="LO-Sim", seed=0,
             pool_label="Bench", capacity_mb=c)
    for s in sorted(k for k in LANE_SCHEDULERS
                    if lane_mode(k) == "scripted")
    for c in (800.0, 4000.0)
]

#: Stream-lane entry: the stream family's default schedulers (all
#: closed-form) over a mid-size Azure-like trace.
STREAM_SCHEDULERS = ("lru", "keepalive", "greedy")
STREAM_FUNCTIONS = 100
STREAM_INVOCATIONS = 8000


def _kernel_batch(cells):
    specs = [
        LaneSpec(
            scheduler=task.scheduler,
            table=cached_arrival_table(task.workload, task.seed),
            capacity_mb=task.capacity_mb,
        )
        for task in cells
    ]
    return LaneKernel(specs).run()


def _sequential_floor(cells, repeats=2):
    """Best-of-N sequential wall time over the same cells."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = [run_task(task) for task in cells]
        best = min(best, time.perf_counter() - t0)
    return best, results


def _assert_parity(sequential, results):
    """The speed means nothing if the cells drift."""
    for cell, result in zip(sequential, results):
        assert result.method == cell.method
        assert list(result.summary.items()) == list(cell.summary.items())


def _warm_memos(cells):
    for task in cells:
        cached_workload(task.workload, task.seed)
        cached_arrival_table(task.workload, task.seed)


def test_lane_kernel_8_lanes(benchmark, emit):
    """8-lane kernel batch vs the sequential per-cell path (>= 3x)."""
    _warm_memos(CELLS)
    sequential_s, sequential = _sequential_floor(CELLS)
    results = benchmark(_kernel_batch, CELLS)
    _assert_parity(sequential, results)
    speedup = sequential_s / benchmark.stats["min"]
    emit(
        f"lane kernel: {len(CELLS)} cells, sequential "
        f"{sequential_s * 1e3:.1f} ms vs 8-lane batch "
        f"{benchmark.stats['min'] * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 3.0


def test_lane_kernel_closed_form_registry(benchmark, emit):
    """Every closed-form registry scheduler in one lane batch (>= 3x).

    The sequential side pays the full per-cell driver -- including
    Offline-Q's per-cell bootstrap rollout -- while the lane side shares
    one arrival table (and its cached bootstrap policy) across lanes.
    """
    _warm_memos(CLOSED_FORM_CELLS)
    sequential_s, sequential = _sequential_floor(CLOSED_FORM_CELLS)
    results = benchmark(_kernel_batch, CLOSED_FORM_CELLS)
    _assert_parity(sequential, results)
    speedup = sequential_s / benchmark.stats["min"]
    emit(
        f"lane kernel (closed-form registry): {len(CLOSED_FORM_CELLS)} "
        f"cells, sequential {sequential_s * 1e3:.1f} ms vs lane batch "
        f"{benchmark.stats['min'] * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 3.0


def test_lane_kernel_scripted(benchmark, emit):
    """Scripted-decision lanes: real ``decide()`` per arrival, shared
    kernel machinery.  Parity is the contract; timing is informational
    (``no_guard``: the decision itself stays Python, so the margin is
    too thin to gate on under load jitter)."""
    benchmark.extra_info["no_guard"] = True
    _warm_memos(SCRIPTED_CELLS)
    sequential_s, sequential = _sequential_floor(SCRIPTED_CELLS)
    results = benchmark(_kernel_batch, SCRIPTED_CELLS)
    _assert_parity(sequential, results)
    speedup = sequential_s / benchmark.stats["min"]
    emit(
        f"lane kernel (scripted): {len(SCRIPTED_CELLS)} cells, sequential "
        f"{sequential_s * 1e3:.1f} ms vs lane batch "
        f"{benchmark.stats['min'] * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    # Scripted lanes must never be slower than sequential by more than
    # jitter: the kernel machinery is strictly cheaper than the event loop.
    assert speedup >= 1.0


def _stream_lane_batch(cells, make_stream):
    return run_stream_lanes(cells, make_stream())


def test_stream_lane_replay(benchmark, emit):
    """Chunked streaming lane replay vs per-cell ``run_stream`` (>= 3x).

    One shared stream pass (lowered once into columnar chunks) against
    the stream family's sequential driver rebuilding and replaying the
    stream per cell -- the ``repro experiment stream --lanes`` speedup.
    """
    from repro.experiments.ext_stream_replay import (
        StreamReplayTask,
        derive_capacity_mb,
        run_cell,
        trace_config,
    )
    from repro.workloads.azure import AzureTraceGenerator

    tasks = [
        StreamReplayTask(
            scheduler=key, seed=0,
            n_functions=STREAM_FUNCTIONS,
            n_invocations=STREAM_INVOCATIONS,
        )
        for key in STREAM_SCHEDULERS
    ]
    generator = AzureTraceGenerator(
        trace_config(STREAM_FUNCTIONS, STREAM_INVOCATIONS)
    )

    def make_stream():
        return generator.stream(seed=0)

    capacity = derive_capacity_mb(make_stream())
    cells = [(key, capacity) for key in STREAM_SCHEDULERS]

    sequential = [run_cell(t) for t in tasks]  # warm + reference
    sequential_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        sequential = [run_cell(t) for t in tasks]
        sequential_s = min(sequential_s, time.perf_counter() - t0)

    results = benchmark(_stream_lane_batch, cells, make_stream)
    for cell, result in zip(sequential, results):
        assert result.method == cell.method
        assert list(result.summary.items()) == list(cell.summary.items())

    speedup = sequential_s / benchmark.stats["min"]
    emit(
        f"stream lanes: {len(cells)} cells x {STREAM_INVOCATIONS} "
        f"arrivals, sequential {sequential_s * 1e3:.1f} ms vs lane pass "
        f"{benchmark.stats['min'] * 1e3:.1f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 3.0
