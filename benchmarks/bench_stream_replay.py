"""Benchmarks for the streaming replay pipeline (not a paper figure).

Guards the O(1)-memory arrival path end to end: chunked Azure arrival
synthesis must sustain a high generation rate, the ``run_stream`` decision
loop must keep simulator throughput, and -- the structural property the
tentpole exists for -- total memory must stay flat while the invocation
count grows 10x (a materialized workload would grow linearly).

The throughput tests are regression-guarded via ``bench_baseline.json``
(both min round time and the per-file peak RSS captured by the conftest
fixture); the memory test asserts the O(1) bound directly with
``ru_maxrss`` deltas inside this process.
"""

import resource

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.schedulers.lru import LRUScheduler
from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator

N_FUNCTIONS = 100
N_INVOCATIONS = 10_000

#: Invocation counts for the O(1)-memory assertion: 10x growth.
MEM_SMALL = 50_000
MEM_LARGE = 500_000

#: Allowed peak-RSS growth (MB) between consuming the small and the large
#: stream.  A materialized 500k-invocation workload alone costs >100 MB of
#: Invocation objects, so a linear-memory regression blows far past this.
MEM_DELTA_BUDGET_MB = 64.0


def _generator(n_invocations: int) -> AzureTraceGenerator:
    return AzureTraceGenerator(AzureTraceConfig(
        n_functions=N_FUNCTIONS,
        n_invocations=n_invocations,
        duration_s=n_invocations / 100.0,
    ))


def _peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MB (Linux ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_stream_generation_throughput(benchmark):
    """Drain a 50k-invocation Azure stream (synthesis + heap merge only)."""
    gen = _generator(5 * N_INVOCATIONS)

    def consume():
        count = 0
        for _ in gen.stream(seed=0):
            count += 1
        return count

    assert benchmark(consume) == 5 * N_INVOCATIONS
    # Chunked numpy synthesis must stay far above the simulator's
    # consumption rate, so generation never bottlenecks a replay.
    assert 5 * N_INVOCATIONS / benchmark.stats["mean"] > 50_000


def test_stream_replay_throughput(benchmark):
    """End-to-end streaming replay: stream -> run_stream -> bounded summary."""
    gen = _generator(N_INVOCATIONS)

    def run():
        sim = ClusterSimulator(SimulationConfig(
            pool_capacity_mb=4096.0, bounded_telemetry=True,
        ))
        return sim.run_stream(gen.stream(seed=0), LRUScheduler())

    result = benchmark(run)
    assert result.summary()["invocations"] == N_INVOCATIONS
    # Floor on invocations/sec: a 10M-invocation full-scale cell must stay
    # in minutes, which needs >~10k inv/s; 2k is the generous red line.
    assert N_INVOCATIONS / benchmark.stats["mean"] > 2_000


def test_stream_memory_is_o1():
    """Peak RSS stays flat while the streamed invocation count grows 10x.

    Consumes a 50k-invocation stream to establish the process peak, then a
    500k-invocation stream; the peak may only grow by a constant working
    set (chunks, heap, per-function sources), never by the trace length.
    """
    small = 0
    for _ in _generator(MEM_SMALL).stream(seed=0):
        small += 1
    assert small == MEM_SMALL
    before = _peak_rss_mb()

    large = 0
    for _ in _generator(MEM_LARGE).stream(seed=0):
        large += 1
    assert large == MEM_LARGE
    delta = _peak_rss_mb() - before
    assert delta < MEM_DELTA_BUDGET_MB, (
        f"peak RSS grew {delta:.1f} MB while streaming 10x more "
        f"invocations (budget {MEM_DELTA_BUDGET_MB} MB): the arrival "
        "pipeline is no longer O(#functions)"
    )
