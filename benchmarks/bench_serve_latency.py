"""Serving-plane latency benchmarks (not a paper figure).

Guards the online path added by the `repro serve` refactor: the
engine-level decision loop (submit -> offer -> decide -> apply, plus
janitor pumps) must sustain simulator-grade decision throughput, and a
full HTTP round trip over the asyncio plane -- socket, parse, admission,
decision, response -- must stay interactive under concurrent load.

The engine benchmark is regression-guarded via ``bench_baseline.json``;
the HTTP benchmark opts out (``no_guard``) because socket scheduling
jitter on shared hosts exceeds the guard band, and relies on its own
generous absolute bounds instead.
"""

import asyncio

from repro.cluster.eventloop import VirtualClock
from repro.cluster.simulator import SimulationConfig
from repro.serve import ServeEngine, ServePlane, http_json

N_DECISIONS = 2_000
N_HTTP_REQUESTS = 64
HTTP_CONCURRENCY = 32

FUNCTIONS = ("hello-python", "hello-node", "hello-go", "hello-java")


def _config(**overrides):
    defaults = dict(
        pool_capacity_mb=65_536.0,
        n_workers=4,
        worker_concurrency=16,
        bounded_telemetry=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_serve_engine_decision_throughput(benchmark):
    """Drive 2k decisions through a fresh engine with periodic pumps."""

    def run():
        clock = VirtualClock()
        engine = ServeEngine(_config(), wall=clock)
        t = 0.0
        for i in range(N_DECISIONS):
            t += 0.01
            clock.advance_to(t)
            engine.submit(FUNCTIONS[i % len(FUNCTIONS)], exec_time_s=0.2)
            if i % 50 == 49:
                engine.pump()
        return engine.drain()

    result = benchmark(run)
    assert result.summary()["invocations"] == N_DECISIONS
    # The online loop must keep simulator-grade throughput: a live plane
    # admitting ~1k req/s leaves the decision path far from the bottleneck.
    assert N_DECISIONS / benchmark.stats["mean"] > 2_000


def test_serve_http_roundtrip_latency(benchmark, emit):
    """Full HTTP round trips under 32-way concurrency; reports p50/p99."""
    benchmark.extra_info["no_guard"] = True  # socket jitter >> guard band
    snapshots = []

    def run():
        async def session():
            clock = VirtualClock()
            engine = ServeEngine(_config(), wall=clock)
            plane = ServePlane(engine)
            await plane.start()
            try:
                clock.advance_to(1.0)
                gate = asyncio.Semaphore(HTTP_CONCURRENCY)

                async def invoke(i):
                    async with gate:
                        return await http_json(
                            plane.host, plane.port, "POST", "/invoke",
                            {"function": FUNCTIONS[i % len(FUNCTIONS)],
                             "exec_s": 0.2},
                        )

                results = await asyncio.gather(
                    *(invoke(i) for i in range(N_HTTP_REQUESTS))
                )
                assert all(s == 200 for s, _ in results)
                _, stats = await http_json(
                    plane.host, plane.port, "GET", "/stats"
                )
                snapshots.append(stats["wall_latency"])
                return stats
            finally:
                await plane.stop()

        return asyncio.run(session())

    stats = benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    assert stats["requests"] == N_HTTP_REQUESTS
    best = min(snapshots, key=lambda s: s["p99_s"])
    emit(
        f"serve HTTP round trip ({HTTP_CONCURRENCY}-way concurrent, "
        f"{N_HTTP_REQUESTS} requests): p50 {best['p50_s'] * 1e3:.2f} ms, "
        f"p99 {best['p99_s'] * 1e3:.2f} ms"
    )
    # Interactive red line: even on a loaded shared host, a stdlib-asyncio
    # round trip with an O(pool) scheduling decision stays well under this.
    assert best["p99_s"] < 0.5, best
