"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures; each prints the same
rows/series the paper reports.  ``REPRO_SCALE=full`` increases repeats and
DRL training budgets (overnight-scale); the default ``fast`` keeps the whole
suite in tens of minutes on a laptop.

MLCR training results are cached in-process (keyed by workload family, pool
capacity and config), so benchmarks that share a trained policy -- fig8,
fig9, fig10 -- only pay for training once per session.

A regression guard compares every micro-benchmark's *minimum* round time
against ``bench_baseline.json`` (written by ``tools/bench_capture.py``)
and fails on a >30% slowdown; set ``REPRO_BENCH_GUARD=off`` to disable it
(the capture tool does so while regenerating the baseline).  The min --
not the mean -- is guarded because shared/virtualized hosts add steal
time that inflates the mean unboundedly under load, while the fastest of
hundreds of rounds lands in a quiet slice and only moves when the code
itself slows down.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentScale

BASELINE_PATH = Path(__file__).resolve().parent / "bench_baseline.json"

#: Allowed slowdown over the captured baseline mean before the guard fails.
REGRESSION_FACTOR = 1.30


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture
def emit(capsys):
    """Print an experiment report, bypassing pytest's output capture.

    The benchmark harness's contract is to *print the rows/series the paper
    reports*; disabling capture keeps the tables visible in plain
    ``pytest benchmarks/ --benchmark-only`` runs (and in teed logs).
    """

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _emit


@pytest.fixture(scope="session")
def bench_baseline():
    """Captured baselines, ``{test_name: min_seconds}`` (may be {})."""
    if not BASELINE_PATH.exists():
        return {}
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(autouse=True)
def bench_regression_guard(request, bench_baseline):
    """Fail any benchmark whose min round regressed >30% past baseline.

    Applies only to tests that used the ``benchmark`` fixture and have an
    entry in ``bench_baseline.json``; absolute-threshold asserts inside the
    tests still provide a backstop for unbaselined benchmarks.  A test can
    opt out of the guard with ``benchmark.extra_info["no_guard"] = True``
    (for timings so small that load jitter exceeds the band); the capture
    tool reads the same flag from the benchmark JSON and keeps such tests
    out of the baseline entirely.
    """
    # Resolve the benchmark fixture up front: it is no longer retrievable
    # once the test's own fixtures have been torn down.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is None:
        return
    # Stamp the process's peak RSS into the benchmark record (Linux
    # ru_maxrss is KB).  The capture tool runs each bench file in its own
    # cold process and harvests this into ``{name}[rss_mb]`` baseline
    # entries, so per-file memory regressions gate in its --compare mode
    # (same cold-process conditions).  Recorded before the guard-off check
    # on purpose: capture runs with the guard disabled.
    try:
        import resource

        benchmark.extra_info["peak_rss_mb"] = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        )
    except (ImportError, AttributeError):  # pragma: no cover - non-POSIX
        pass
    if os.environ.get("REPRO_BENCH_GUARD", "").lower() in ("off", "0"):
        return
    if getattr(benchmark, "extra_info", {}).get("no_guard"):
        return
    baseline_min = bench_baseline.get(request.node.name)
    if baseline_min is None:
        return
    try:
        observed = benchmark.stats["min"]
    except (TypeError, KeyError, AttributeError):
        return  # benchmark disabled/skipped: nothing was measured
    allowed = baseline_min * REGRESSION_FACTOR
    if observed > allowed:
        pytest.fail(
            f"{request.node.name}: min {observed * 1e3:.3f} ms regressed "
            f"past {REGRESSION_FACTOR:.2f}x baseline "
            f"({baseline_min * 1e3:.3f} ms -> allowed "
            f"{allowed * 1e3:.3f} ms); if intentional, refresh with "
            f"`python tools/bench_capture.py`"
        )
