"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures; each prints the same
rows/series the paper reports.  ``REPRO_SCALE=full`` increases repeats and
DRL training budgets (overnight-scale); the default ``fast`` keeps the whole
suite in tens of minutes on a laptop.

MLCR training results are cached in-process (keyed by workload family, pool
capacity and config), so benchmarks that share a trained policy -- fig8,
fig9, fig10 -- only pay for training once per session.
"""

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture
def emit(capsys):
    """Print an experiment report, bypassing pytest's output capture.

    The benchmark harness's contract is to *print the rows/series the paper
    reports*; disabling capture keeps the tables visible in plain
    ``pytest benchmarks/ --benchmark-only`` runs (and in teed logs).
    """

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _emit
