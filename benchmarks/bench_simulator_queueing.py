"""Micro-benchmarks for the layered decision loop (not a paper figure).

Guards the refactored control-plane/data-plane hot path: the policy driver
must stay as fast as the old monolith with admission control disabled, and
the deterministic slot-heap admission must add only bounded overhead when a
worker concurrency limit is enforced.
"""

from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.schedulers.greedy import GreedyMatchScheduler
from repro.workloads.fstartbench import hi_sim_workload, overall_workload


def test_decision_loop_no_queueing(benchmark):
    """Incremental decision loop, admission control disabled.

    Exercises the layered next_decision_point/apply_decision path directly
    (the same loop the DRL environment drives) rather than batch run().
    """
    workload = overall_workload(seed=0)

    def run():
        scheduler = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=2048.0),
            scheduler.make_eviction_policy(),
        )
        sim.load(workload)
        while (ctx := sim.next_decision_point()) is not None:
            sim.apply_decision(scheduler.decide(ctx))
        return sim.finish()

    result = benchmark(run)
    assert result.telemetry.n_invocations == 400
    assert "total_queueing_s" not in result.summary()
    # Must match the batch-mode budget: the layering adds no hot-path cost.
    assert benchmark.stats["mean"] < 0.5


def test_simulator_with_queueing(benchmark):
    """End-to-end HI-Sim run with a finite per-worker concurrency limit.

    Admission goes through the per-worker slot heaps on every startup, so
    this measures the full queueing-enabled decision loop.
    """
    workload = hi_sim_workload(seed=0)

    def run():
        scheduler = GreedyMatchScheduler()
        sim = ClusterSimulator(
            SimulationConfig(pool_capacity_mb=2048.0, n_workers=4,
                             worker_concurrency=2),
            scheduler.make_eviction_policy(),
        )
        return sim.run(workload, scheduler)

    result = benchmark(run)
    assert result.summary()["total_queueing_s"] > 0
    # Slot-heap admission is O(log limit) per startup: the queueing path
    # must stay within ~2x of the unconstrained simulator budget.
    assert benchmark.stats["mean"] < 0.5
