"""Benchmark harness for Figure 2: greedy vs globally-planned reuse."""

from repro.experiments import fig2_motivation



def test_fig2_motivation(benchmark, emit):
    result = benchmark.pedantic(fig2_motivation.run, rounds=3, iterations=1)
    emit(fig2_motivation.report(result))
    # Paper shape: the best-effort policy is strictly worse in total.
    assert result.greedy_is_suboptimal
