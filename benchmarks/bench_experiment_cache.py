"""Micro-benchmarks for the content-addressed experiment cache.

Times a small scheduler grid cold (every cell simulated) against warm
(every cell served from ``.repro_cache``-style storage) and checks the
warm path clears the >= 5x speedup the cache promises, plus the raw
digest/lookup overhead per cell.
"""

import time

from repro.experiments.cache import ExperimentCache
from repro.experiments.parallel import GridTask, run_grid

TASKS = [
    GridTask(scheduler=key, workload="LO-Sim", seed=seed,
             pool_label="Fixed", capacity_mb=2000.0)
    for key in ("lru", "greedy")
    for seed in (0, 1)
]


def test_grid_warm_cache(benchmark, tmp_path):
    """Re-running a fully cached grid is file reads, not simulations."""
    # Sub-millisecond file I/O jitters with machine load well past the
    # 1.30x baseline band; the cold/warm speedup assert below is the gate.
    benchmark.extra_info["no_guard"] = True
    cache = ExperimentCache(root=tmp_path, enabled=True)
    start = time.perf_counter()
    cold_cells = run_grid(TASKS, jobs=1, cache=cache)
    cold_s = time.perf_counter() - start

    warm_cells = benchmark(lambda: run_grid(TASKS, jobs=1, cache=cache))
    assert [c.summary for c in warm_cells] == [c.summary for c in cold_cells]
    warm_s = benchmark.stats["mean"]
    assert cold_s / warm_s >= 5.0, (
        f"warm cache only {cold_s / warm_s:.1f}x faster "
        f"({warm_s * 1e3:.2f} ms vs cold {cold_s * 1e3:.2f} ms)"
    )


def test_cell_key_digest(benchmark):
    """Content-address computation for one grid cell."""
    cache = ExperimentCache(enabled=True)
    key = benchmark(lambda: cache.cell_key(TASKS[0]))
    assert len(key) == 64
    # Keying must stay negligible next to a ~100 ms cell simulation.
    assert benchmark.stats["mean"] < 0.001
