"""Benchmark harness for Figure 10: warm resource consumption under Loose."""

from repro.experiments import fig10_memory



def test_fig10_memory(benchmark, scale, emit):
    result = benchmark.pedantic(
        fig10_memory.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(fig10_memory.report(result))

    # Paper shape: exact-match baselines fill (nearly) the whole pool...
    for method in ("LRU", "FaasCache", "KeepAlive"):
        assert result.row(method).pool_utilization > 0.9, method
    # ...while the multi-level methods do not need to exhaust it, with
    # Greedy-Match consuming the least.
    greedy = result.row("Greedy-Match")
    assert greedy.pool_utilization < 0.9
    assert greedy.peak_warm_memory_mb <= min(
        result.row(m).peak_warm_memory_mb
        for m in ("LRU", "FaasCache", "KeepAlive")
    )
