"""Micro-benchmarks for the columnar telemetry data plane.

Measures event-ingest throughput of the struct-of-arrays
:class:`~repro.cluster.telemetry.Telemetry` against the pre-columnar
list-of-records reference
(:class:`~repro.cluster.telemetry_reference.LegacyTelemetry`), plus the
one-pass summary aggregation over the columns.  The columnar plane's
contract is >= 2x ingest throughput at byte-identical output (the parity
suite in ``tests/test_telemetry_parity.py`` checks the output half).
"""

import time

from repro.cluster.telemetry import Telemetry
from repro.cluster.telemetry_reference import LegacyTelemetry

N_EVENTS = 5_000


def _synthetic_events(n=N_EVENTS):
    """Deterministic invocation-value tuples shaped like simulator output."""
    events = []
    for i in range(n):
        fn = f"fn-{i % 17}"
        cold = i % 3 == 0
        events.append((
            i, fn, i * 0.01, i % 40, cold, (i % 4),
            0.5 if cold else 0.05,
            0.3, 0.1, 0.05, 0.03, 0.02, 0.0,
            0.5, 0.0, i % 4,
        ))
    return events


def _ingest(telemetry_cls, events):
    telemetry = telemetry_cls()
    record = telemetry.record_invocation_values
    for event in events:
        record(*event)
    return telemetry


def test_columnar_ingest(benchmark):
    """Append 5k invocation events into the columnar telemetry."""
    events = _synthetic_events()
    telemetry = benchmark(lambda: _ingest(Telemetry, events))
    assert telemetry.n_invocations == N_EVENTS
    assert benchmark.stats["mean"] < 0.05


def test_legacy_ingest_reference(benchmark):
    """The same 5k events through the pre-columnar list implementation."""
    events = _synthetic_events()
    telemetry = benchmark(lambda: _ingest(LegacyTelemetry, events))
    assert telemetry.n_invocations == N_EVENTS


def test_columnar_vs_legacy_speedup():
    """The columnar plane ingests >= 2x faster than the list reference."""
    events = _synthetic_events()
    # Warm both paths once, then take best-of-5 to shed scheduler noise.
    _ingest(Telemetry, events)
    _ingest(LegacyTelemetry, events)

    def best_of(telemetry_cls, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _ingest(telemetry_cls, events)
            best = min(best, time.perf_counter() - start)
        return best

    columnar = best_of(Telemetry)
    legacy = best_of(LegacyTelemetry)
    assert legacy / columnar >= 2.0, (
        f"columnar ingest only {legacy / columnar:.2f}x faster "
        f"({columnar * 1e3:.2f} ms vs {legacy * 1e3:.2f} ms)"
    )


def test_summary_aggregation(benchmark):
    """One-pass summary() over 5k ingested events."""
    telemetry = _ingest(Telemetry, _synthetic_events())

    summary = benchmark(telemetry.summary)
    assert summary["invocations"] == float(N_EVENTS)
    assert benchmark.stats["mean"] < 0.01


def test_memory_timeline_dedup_ingest(benchmark):
    """50k constant-valued memory samples collapse to two points."""

    def run():
        telemetry = Telemetry()
        sample = telemetry.sample_memory
        for i in range(50_000):
            sample(float(i), 512.0)
        return telemetry

    telemetry = benchmark(run)
    assert len(telemetry.memory_timeline) == 2
    assert telemetry.memory_timeline[-1] == (49_999.0, 512.0)
