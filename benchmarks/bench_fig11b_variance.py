"""Benchmark harness for Figure 11b: LO-Var vs HI-Var box charts."""

from repro.experiments import fig11_benchmarks
from repro.experiments.fig8_overall import METHOD_ORDER



def test_fig11b_variance(benchmark, scale, emit):
    result = benchmark.pedantic(
        fig11_benchmarks.run_subfigure,
        args=("b:variance",),
        kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    emit(fig11_benchmarks.report(result))

    # Paper shape: low package-size variance is easier for every method.
    for method in METHOD_ORDER:
        assert result.mean_of("LO-Var", method) < result.mean_of(
            "HI-Var", method
        ), method
    # MLCR is competitive with the best method under HI-Var (the hard case).
    hi_means = {m: result.mean_of("HI-Var", m) for m in METHOD_ORDER}
    assert hi_means["MLCR"] <= 1.10 * min(hi_means.values())
